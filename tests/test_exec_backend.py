"""Execution-backend tests: resolution, ordering, and the determinism
contract (serial / thread / process backends produce bit-identical
Monte-Carlo results on the OTA problem)."""

import numpy as np
import pytest

from repro.designs import OTAParameters, evaluate_ota
from repro.errors import ReproError
from repro.exec import (BACKEND_ENV_VAR, ProcessBackend, SerialBackend,
                        ThreadBackend, available_backends, default_workers,
                        resolve_backend)
from repro.mc import MCConfig, monte_carlo, monte_carlo_points
from repro.process import C35


class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend().name == "serial"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread:2")
        backend = resolve_backend()
        assert backend.name == "thread"
        assert backend.workers == 2

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread:2")
        assert resolve_backend("serial").name == "serial"

    def test_worker_suffix(self):
        assert resolve_backend("process:5").workers == 5

    def test_workers_argument(self):
        assert resolve_backend("thread", workers=3).workers == 3

    def test_default_worker_count_is_cpu_count(self):
        assert resolve_backend("thread").workers == default_workers()

    def test_instance_passthrough(self):
        backend = ThreadBackend(2)
        assert resolve_backend(backend) is backend

    def test_auto_resolves(self):
        assert resolve_backend("auto").name in ("serial", "thread", "process")

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown execution backend"):
            resolve_backend("gpu")

    def test_bad_worker_count_raises(self):
        with pytest.raises(ReproError, match="worker count"):
            resolve_backend("thread:zero")
        with pytest.raises(ReproError, match="worker count"):
            resolve_backend("thread:0")

    def test_serial_rejects_worker_suffix(self):
        with pytest.raises(ReproError, match="serial backend takes no"):
            resolve_backend("serial:4")

    def test_concurrent_process_pools_stay_correct(self):
        # Two threads driving process pools at once must not clobber
        # each other's fork payload (results would silently swap).
        from concurrent.futures import ThreadPoolExecutor

        def sweep(offset):
            backend = ProcessBackend(2)
            return backend.run(lambda t: offset + t, list(range(6)))

        with ThreadPoolExecutor(max_workers=2) as pool:
            a, b = pool.map(sweep, [100, 200])
        assert a == [100 + t for t in range(6)]
        assert b == [200 + t for t in range(6)]

    def test_available_backends_names(self):
        assert set(available_backends()) == {"serial", "thread", "process"}


class TestRunContract:
    """Every backend returns results in task order and reports progress."""

    backends = [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]

    @pytest.mark.parametrize("backend", backends,
                             ids=lambda b: b.name)
    def test_order_preserved(self, backend):
        tasks = list(range(11))
        assert backend.run(lambda t: t * t, tasks) == [t * t for t in tasks]

    @pytest.mark.parametrize("backend", backends,
                             ids=lambda b: b.name)
    def test_progress_counts_every_task(self, backend):
        seen = []
        backend.run(lambda t: t, list(range(5)),
                    progress=lambda done, total, index:
                    seen.append((done, total, index)))
        assert [done for done, _, _ in seen] == [1, 2, 3, 4, 5]
        assert all(total == 5 for _, total, _ in seen)
        assert sorted(index for _, _, index in seen) == list(range(5))

    @pytest.mark.parametrize("backend", backends,
                             ids=lambda b: b.name)
    def test_empty_task_list(self, backend):
        assert backend.run(lambda t: t, []) == []

    def test_single_task_runs_serially(self):
        # A one-element work load must not pay pool overhead (and must
        # still work with a closure even on spawn-only platforms).
        value = {"x": 3}
        assert ProcessBackend(4).run(lambda t: value["x"] + t, [1]) == [4]


def _ota_mc(backend_spec):
    """A small two-chunk OTA point sweep under the given backend."""
    points = OTAParameters.from_normalized(
        np.linspace(0.2, 0.8, 3)[:, None] * np.ones((3, 8))).to_array()

    def evaluator(point_indices, repeats, die_sample):
        tiled = OTAParameters.from_array(
            np.repeat(points[point_indices], repeats, axis=0))
        performance = evaluate_ota(tiled, variations=die_sample)
        return {"gain_db": performance["gain_db"],
                "pm_deg": performance["pm_deg"]}

    config = MCConfig(n_samples=8, seed=42, chunk_lanes=16,
                      backend=backend_spec)
    return monte_carlo_points(evaluator, 3, C35, config)


class TestBackendEquivalence:
    """The acceptance criterion: backend choice never changes results."""

    def test_thread_and_process_match_serial_on_ota(self):
        reference = _ota_mc("serial")
        assert reference["gain_db"].shape == (3, 8)
        for spec in ("thread:2", "process:2"):
            result = _ota_mc(spec)
            for name in reference:
                np.testing.assert_array_equal(
                    reference[name], result[name],
                    err_msg=f"{spec} diverged from serial on {name}")

    def test_worker_count_does_not_change_results(self):
        np.testing.assert_array_equal(_ota_mc("process:2")["gain_db"],
                                      _ota_mc("process:3")["gain_db"])

    def test_single_design_chunked_equivalence(self):
        def evaluator(sample):
            return {"metric": sample.dvto_n + sample.kp_scale_p}

        reference = monte_carlo(evaluator, C35,
                                MCConfig(n_samples=40, seed=9,
                                         chunk_lanes=12))
        for spec in ("thread:2", "process:2"):
            result = monte_carlo(evaluator, C35,
                                 MCConfig(n_samples=40, seed=9,
                                          chunk_lanes=12, backend=spec))
            np.testing.assert_array_equal(reference["metric"],
                                          result["metric"], err_msg=spec)

    def test_progress_reaches_total_under_parallel_backend(self):
        seen = []

        def evaluator(point_indices, repeats, die_sample):
            return {"m": np.zeros(point_indices.size * repeats)}

        monte_carlo_points(evaluator, 5, C35,
                           MCConfig(n_samples=4, seed=1, chunk_lanes=4,
                                    backend="thread:2"),
                           progress=lambda done, total:
                           seen.append((done, total)))
        assert seen[-1] == (5, 5)
        done_values = [done for done, _ in seen]
        assert done_values == sorted(done_values)  # monotone
