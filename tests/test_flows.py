"""Integration tests of the end-to-end flows (reduced scale)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.flow import (FilterFlowConfig, FlowConfig, load_flow_arrays,
                        rebuild_model, reduced_config, run_filter_flow,
                        run_model_build_flow, save_flow_artifacts)
from repro.flow.accounting import SimulationLedger
from repro.measure import Spec, SpecSet
from repro.yieldmodel import estimate_yield


class TestModelBuildFlow:
    def test_front_is_monotone_tradeoff(self, reduced_flow):
        objectives = reduced_flow.pareto_objectives
        assert np.all(np.diff(objectives[:, 0]) > 0)   # gain ascending
        assert np.all(np.diff(objectives[:, 1]) <= 1e-9)  # pm descending

    def test_variation_columns_positive(self, reduced_flow):
        for column in reduced_flow.variation.values():
            assert np.all(column > 0)
            assert np.all(column < 20.0)  # sanity: below 20%

    def test_mc_sample_shapes(self, reduced_flow):
        k = reduced_flow.pareto_count
        s = reduced_flow.config.mc_samples
        for data in reduced_flow.mc_samples.values():
            assert data.shape == (k, s)

    def test_ledger_accounts_for_all_stages(self, reduced_flow):
        stages = set(reduced_flow.ledger.stages)
        assert "multi-objective optimisation" in stages
        assert "monte-carlo variation analysis" in stages
        expected_moo = (reduced_flow.config.generations
                        * reduced_flow.config.population)
        assert reduced_flow.ledger.stages[
            "multi-objective optimisation"].simulations == expected_moo

    def test_table2_rows_structure(self, reduced_flow):
        rows = reduced_flow.table2_rows(6)
        assert 2 <= len(rows) <= 6
        for row in rows:
            assert set(row) == {"design", "gain_db", "dgain_pct",
                                "pm_deg", "dpm_pct"}
        gains = [r["gain_db"] for r in rows]
        assert gains == sorted(gains)

    def test_ro_column_plausible(self, reduced_flow):
        assert np.all(reduced_flow.ro_ohms > 1e4)
        assert np.all(reduced_flow.ro_ohms < 1e8)

    def test_model_queries_work(self, combined_model):
        lo, hi = combined_model.table.key_range("gain_db")
        mid = 0.5 * (lo + hi)
        variation = combined_model.variation_at("gain_db", mid)
        assert 0 < variation < 10
        params = combined_model.parameters_at("gain_db", mid)
        assert set(params) == {"w1", "l1", "w2", "l2", "w3", "l3",
                               "w4", "l4"}

    def test_reproducible_across_runs(self, reduced_flow):
        again = run_model_build_flow(reduced_config())
        np.testing.assert_array_equal(again.pareto_objectives,
                                      reduced_flow.pareto_objectives)
        np.testing.assert_array_equal(
            again.variation["gain_db_delta_pct"],
            reduced_flow.variation["gain_db_delta_pct"])

    def test_seed_changes_results(self):
        other = run_model_build_flow(reduced_config(seed=77))
        base = run_model_build_flow(reduced_config())
        assert other.pareto_objectives.shape != base.pareto_objectives.shape \
            or not np.allclose(other.pareto_objectives,
                               base.pareto_objectives)


class TestYieldTargetingIntegration:
    def test_guard_banded_design_actually_yields(self, combined_model):
        """The paper's core claim at reduced scale: the guard-banded
        design passes its spec in a fresh Monte Carlo."""
        from repro.designs.ota import OTAParameters, evaluate_ota
        from repro.mc import MCConfig, monte_carlo
        from repro.process import C35

        lo, hi = combined_model.table.key_range("gain_db")
        spec_gain = lo + 0.6 * (hi - lo)
        specs = SpecSet([Spec("gain_db", "ge", spec_gain, "dB")])
        # Snap to a real front point: the reduced front is too sparse for
        # parameter interpolation (see design_for_specs docstring).
        design = combined_model.design_for_specs(specs, strategy="snap")
        params = OTAParameters(**design.parameters)

        def evaluator(sample):
            tiled = OTAParameters.from_array(
                np.broadcast_to(params.to_array(), (sample.size, 8)))
            return evaluate_ota(tiled, variations=sample)

        population = monte_carlo(evaluator, C35,
                                 MCConfig(n_samples=200, seed=123))
        estimate = estimate_yield(population, specs)
        assert estimate.fraction >= 0.98

    def test_unguarded_design_yields_less(self, reduced_flow):
        """Ablation: a design whose *nominal* performance sits exactly at
        the spec (no guard band) loses roughly half its dice -- the yield
        loss the paper's guard-banding eliminates."""
        from repro.designs.ota import OTAParameters, evaluate_ota
        from repro.mc import MCConfig, monte_carlo
        from repro.process import C35

        # Take a real front point and spec its own nominal gain.
        index = int(0.6 * (reduced_flow.pareto_count - 1))
        naive_params = OTAParameters.from_array(
            reduced_flow.pareto_parameters[index])
        spec_gain = float(reduced_flow.pareto_objectives[index, 0])
        specs = SpecSet([Spec("gain_db", "ge", spec_gain, "dB")])

        def evaluator(sample):
            tiled = OTAParameters.from_array(np.broadcast_to(
                naive_params.to_array(), (sample.size, 8)))
            return evaluate_ota(tiled, variations=sample)

        population = monte_carlo(evaluator, C35,
                                 MCConfig(n_samples=200, seed=123))
        naive = estimate_yield(population, specs)
        # Nominal design sits *at* the limit: ~50% of dice fall below.
        assert 0.15 <= naive.fraction <= 0.85


class TestArtifacts:
    def test_save_and_rebuild(self, reduced_flow, tmp_path):
        written = save_flow_artifacts(reduced_flow, tmp_path)
        assert (tmp_path / "flow_result.npz").exists()
        assert (tmp_path / "flow_summary.json").exists()
        assert (tmp_path / "ota_yield_model.va").exists()

        model = rebuild_model(tmp_path)
        lo, hi = model.table.key_range("gain_db")
        mid = 0.5 * (lo + hi)
        assert model.variation_at("gain_db", mid) == pytest.approx(
            reduced_flow.model.variation_at("gain_db", mid))
        params_a = model.parameters_at("gain_db", mid)
        params_b = reduced_flow.model.parameters_at("gain_db", mid)
        for key in params_a:
            assert params_a[key] == pytest.approx(params_b[key])

    def test_summary_json_contents(self, reduced_flow, tmp_path):
        save_flow_artifacts(reduced_flow, tmp_path)
        summary = json.loads((tmp_path / "flow_summary.json").read_text())
        assert summary["pdk"] == "c35"
        assert summary["pareto_points"] == reduced_flow.pareto_count
        assert any(row["stage"] == "TOTAL" for row in summary["ledger"])

    def test_load_arrays(self, reduced_flow, tmp_path):
        save_flow_artifacts(reduced_flow, tmp_path)
        arrays = load_flow_arrays(tmp_path)
        np.testing.assert_array_equal(arrays["pareto_objectives"],
                                      reduced_flow.pareto_objectives)
        assert "mc_gain_db" in arrays


class TestFilterFlow:
    @pytest.fixture(scope="class")
    def filter_result(self, combined_model):
        return run_filter_flow(
            combined_model,
            FilterFlowConfig(verification_samples=150, seed=2008))

    def test_caps_within_bounds(self, filter_result):
        from repro.designs.filter2 import FilterCaps
        caps = filter_result.caps.to_array()
        for value, (lo, hi) in zip(caps, FilterCaps.BOUNDS, strict=True):
            assert lo <= value <= hi

    def test_nominal_meets_mask(self, filter_result):
        spec = filter_result.config.spec
        assert filter_result.nominal_performance["ripple_db"] <= \
            spec.max_ripple_db
        assert filter_result.nominal_performance["atten_db"] >= \
            spec.min_atten_db

    def test_transistor_verification_close_to_behavioral(self, filter_result):
        behavioral = filter_result.nominal_performance
        transistor = filter_result.transistor_performance
        assert behavioral["f3db_hz"] == pytest.approx(
            transistor["f3db_hz"], rel=0.2)

    def test_yield_high(self, filter_result):
        assert filter_result.yield_estimate.fraction >= 0.95

    def test_ota_guard_band_applied(self, filter_result):
        target = filter_result.ota_design.targets["gain_db"]
        assert target.new_value > target.required

    def test_ledger_separates_design_from_verification(self, filter_result):
        stages = filter_result.ledger.stages
        assert stages["filter optimisation (behavioural)"].simulations > 0
        verification = stages["transistor verification (monte carlo)"]
        assert verification.simulations == 150


class TestSelectCapacitors:
    """Regression tests for the feasibility/guard mismatch in
    _select_capacitors (IndexError on an exactly-zero best margin)."""

    ARGS = dict(ota_gain_db=55.0, ota_ro=2.0e6,
                parasitic_pole_hz=50e6, cap_corner_scale=0.12)

    def _select(self, front_unit, front_obj):
        from repro.designs.filter2 import FilterSpec
        from repro.flow.filter_flow import _select_capacitors
        return _select_capacitors(np.asarray(front_unit),
                                  np.asarray(front_obj),
                                  spec=FilterSpec(), **self.ARGS)

    def test_zero_best_margin_returns_best_nominal(self):
        # Used to raise IndexError: the guard tested `< 0` while the
        # feasibility filter demanded `> 0`, so a front whose best
        # worst-margin is exactly 0 produced an empty candidate list.
        chosen = self._select([[0.5, 0.5, 0.5]], [[0.0, 0.4]])
        assert chosen == 0

    def test_zero_margin_candidate_ranked_by_worst_margin(self):
        front_obj = [[0.0, 0.4], [0.2, 0.3]]
        front_unit = [[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]]
        assert self._select(front_unit, front_obj) in (0, 1)

    def test_negative_best_margin_still_raises(self):
        from repro.errors import YieldModelError
        with pytest.raises(YieldModelError, match="no capacitor choice"):
            self._select([[0.5, 0.5, 0.5]], [[-0.1, 0.4]])


class TestAccounting:
    def test_ledger_math(self):
        ledger = SimulationLedger()
        ledger.record("a", 100, 1.5)
        ledger.record("a", 50, 0.5)
        ledger.record("b", 10, 0.1)
        assert ledger.total_simulations == 160
        assert ledger.total_seconds == pytest.approx(2.1)
        rows = ledger.as_rows()
        assert rows[-1][0] == "TOTAL"
        assert "a" in ledger.table()

    def test_timed_context(self):
        ledger = SimulationLedger()
        with ledger.timed("stage", 5):
            pass
        assert ledger.stages["stage"].simulations == 5
        assert ledger.stages["stage"].wall_seconds >= 0


class TestYieldSearchStage:
    """Stage 7: the in-loop yield search on both seed designs."""

    @pytest.fixture(scope="class")
    def yield_flow(self):
        config = dataclasses.replace(
            reduced_config(),
            yield_objective="yield", yield_target=0.90,
            yield_generations=4, yield_population=10,
            corners="tm", corner_vdds=(3.3,), corner_temps=(27.0,))
        return run_model_build_flow(config)

    def test_both_seed_designs_get_annotated_fronts(self, yield_flow):
        for search in (yield_flow.yield_search,
                       yield_flow.filter_yield_search):
            assert search is not None
            assert search.front_count() > 0
            annotations = search.front_annotations()
            assert annotations["yield"].shape == (search.front_count(),)
            assert np.all((annotations["fidelity"] >= 0)
                          & (annotations["fidelity"] <= 2))

    def test_augmented_objective_names(self, yield_flow):
        assert yield_flow.yield_search.objective_names == \
            ("gain_db", "pm_deg", "yield_frac")
        assert yield_flow.filter_yield_search.objective_names == \
            ("ripple_margin", "atten_margin", "yield_frac")

    def test_ladder_costs_in_flow_ledger(self, yield_flow):
        stages = set(yield_flow.ledger.stages)
        assert "yield ladder: corner bounds" in stages
        assert "yield search: nominal evaluations" in stages
        ladder_sims = sum(record.simulations
                          for name, record in
                          yield_flow.ledger.stages.items()
                          if name.startswith("yield ladder:"))
        assert ladder_sims == (yield_flow.yield_search.counts.total_sims
                               + yield_flow.filter_yield_search
                                 .counts.total_sims)

    def test_artifacts_include_yield_fronts(self, yield_flow, tmp_path):
        written = save_flow_artifacts(yield_flow, tmp_path)
        assert written["yield_front"].exists()
        assert written["filter_yield_front"].exists()
        report = written["yield_front"].read_text()
        assert "yield-annotated Pareto front" in report
        assert "target yield" in report
        arrays = load_flow_arrays(tmp_path)
        points = yield_flow.yield_search.front_count()
        assert arrays["yield_front_objectives"].shape == (points, 3)
        assert arrays["yield_front_yield"].shape == (points,)
        assert arrays["filter_yield_front_objectives"].shape[1] == 3
        summary = json.loads((tmp_path / "flow_summary.json").read_text())
        assert summary["yield_search"]["mode"] == "yield"
        assert len(summary["filter_yield_search"]["ladder"]
                   ["sims_per_fidelity"]) == 3

    def test_disabled_by_default(self, reduced_flow):
        assert reduced_flow.yield_search is None
        assert reduced_flow.filter_yield_search is None


class TestStreamingVerificationStage:
    """Stage 4c: the streaming adaptive yield verification."""

    @pytest.fixture(scope="class")
    def streaming_flow(self):
        config = dataclasses.replace(
            reduced_config(), generations=6,
            adaptive_ci=0.10, adaptive_max_samples=1000,
            adaptive_chunk_lanes=32,
            corners="tm", corner_vdds=(3.3,), corner_temps=(27.0,))
        return run_model_build_flow(config)

    def test_stage_runs_and_stops_adaptively(self, streaming_flow):
        streaming = streaming_flow.streaming_verification
        assert streaming is not None
        assert streaming.complete
        assert streaming.counter is not None
        assert streaming.counter.total == streaming.samples_done
        lo, hi = streaming.counter.interval()
        if streaming.stopped_early:
            assert hi - lo <= 0.10
            assert streaming.samples_done < streaming.samples_cap

    def test_costs_in_flow_ledger(self, streaming_flow):
        record = streaming_flow.ledger.stages[
            "streaming yield verification"]
        assert record.simulations == \
            streaming_flow.streaming_verification.samples_done

    def test_artifacts_include_report(self, streaming_flow, tmp_path):
        written = save_flow_artifacts(streaming_flow, tmp_path)
        assert written["streaming_verification"].exists()
        report = written["streaming_verification"].read_text()
        assert "yield" in report and "gain_db" in report
        summary = json.loads((tmp_path / "flow_summary.json").read_text())
        entry = summary["streaming_verification"]
        assert entry["total"] == \
            streaming_flow.streaming_verification.samples_done
        assert entry["wilson_interval"][0] <= entry["wilson_interval"][1]

    def test_disabled_by_default(self, reduced_flow):
        assert reduced_flow.streaming_verification is None

    def test_stale_checkpoint_from_other_front_rejected(self, tmp_path):
        # The checkpoint fingerprint binds the verified design (via the
        # stage key): a build whose front differs must refuse to resume
        # another build's verification rather than report its yield.
        from repro.errors import ReproError
        checkpoint = tmp_path / "verify.ckpt.npz"
        base = dataclasses.replace(
            reduced_config(), generations=6,
            adaptive_ci=0.15, adaptive_max_samples=500,
            adaptive_chunk_lanes=32,
            streaming_checkpoint=str(checkpoint),
            corners="none")
        run_model_build_flow(base)
        assert checkpoint.exists()
        with pytest.raises(ReproError, match="incompatible"):
            run_model_build_flow(
                dataclasses.replace(base, generations=8))


class TestHighSigmaStage:
    """Stage 4d: the rare-event high-sigma verification."""

    @pytest.fixture(scope="class")
    def high_sigma_flow(self):
        config = dataclasses.replace(
            reduced_config(), generations=6,
            high_sigma=True, high_sigma_per_level=200,
            high_sigma_final=300, mc_chunk_lanes=128,
            corners="tm", corner_vdds=(3.3,), corner_temps=(27.0,))
        return run_model_build_flow(config)

    def test_stage_runs_and_reports(self, high_sigma_flow):
        result = high_sigma_flow.high_sigma
        assert result is not None
        assert result.n_levels >= 1
        assert 0.0 <= result.p_fail <= 1.0
        assert result.n_final == 300
        assert all(level.n_samples == 200 for level in result.levels)

    def test_costs_in_flow_ledger(self, high_sigma_flow):
        record = high_sigma_flow.ledger.stages["high-sigma verification"]
        assert record.simulations == \
            high_sigma_flow.high_sigma.total_simulations

    def test_artifacts_include_report(self, high_sigma_flow, tmp_path):
        written = save_flow_artifacts(high_sigma_flow, tmp_path)
        assert written["high_sigma"].exists()
        report = written["high_sigma"].read_text()
        assert "p_fail" in report and "sigma" in report
        summary = json.loads((tmp_path / "flow_summary.json").read_text())
        entry = summary["high_sigma"]
        assert entry["p_fail"] == high_sigma_flow.high_sigma.p_fail
        assert entry["total_simulations"] == \
            high_sigma_flow.high_sigma.total_simulations
        assert entry["interval"][0] <= entry["interval"][1]
        assert len(entry["acceptance_rates"]) == \
            high_sigma_flow.high_sigma.n_levels

    def test_disabled_by_default(self, reduced_flow):
        assert reduced_flow.high_sigma is None
