"""General-dimension hypervolume tests (the yield-front scorer)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OptimizationError
from repro.moo import hypervolume, hypervolume_2d


class TestKnownVolumes:
    def test_single_cube(self):
        assert hypervolume([[1.0, 1.0, 1.0]], (0, 0, 0)) == pytest.approx(1.0)

    def test_reference_offset(self):
        assert hypervolume([[2.0, 3.0, 4.0]], (1, 1, 1)) == pytest.approx(6.0)

    def test_two_points_inclusion_exclusion(self):
        # Union = 2*1*1 + 1*2*1 - overlap 1*1*1 = 3.
        points = [[2.0, 1.0, 1.0], [1.0, 2.0, 1.0]]
        assert hypervolume(points, (0, 0, 0)) == pytest.approx(3.0)

    def test_dominated_point_ignored(self):
        points = [[2.0, 2.0, 2.0], [1.0, 1.0, 1.0]]
        assert hypervolume(points, (0, 0, 0)) == pytest.approx(8.0)

    def test_duplicates_ignored(self):
        points = [[1.0, 1.0, 1.0]] * 3
        assert hypervolume(points, (0, 0, 0)) == pytest.approx(1.0)

    def test_out_of_range_and_nonfinite_filtered(self):
        points = [[1.0, 1.0, 1.0], [-1.0, 5.0, 5.0], [np.nan, 2.0, 2.0],
                  [np.inf, 2.0, 2.0]]
        assert hypervolume(points, (0, 0, 0)) == pytest.approx(1.0)

    def test_empty_and_fully_dominated_by_reference(self):
        assert hypervolume(np.empty((0, 3)), (0, 0, 0)) == 0.0
        assert hypervolume([[0.0, 1.0, 1.0]], (0, 0, 0)) == 0.0

    def test_four_objectives(self):
        assert hypervolume([[1, 1, 1, 1], [2, 0.5, 1, 1]],
                           (0, 0, 0, 0)) == pytest.approx(1.0 + 0.5)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(OptimizationError):
            hypervolume([[1.0, 1.0]], (0, 0, 0))

    def test_two_objectives_delegate_to_fast_path(self):
        points = np.array([[1.0, 2.0], [2.0, 1.0], [0.5, 0.5]])
        assert hypervolume(points, (0, 0)) == \
            hypervolume_2d(points, (0.0, 0.0))


class TestConsistency:
    def test_constant_extra_dimension_scales_volume(self):
        rng = np.random.default_rng(3)
        points_2d = rng.random((30, 2)) + 0.1
        height = 2.5
        points_3d = np.hstack([points_2d,
                               np.full((30, 1), height)])
        expected = hypervolume_2d(points_2d, (0.0, 0.0)) * height
        assert hypervolume(points_3d, (0, 0, 0)) == pytest.approx(expected)

    def test_permutation_invariance(self):
        rng = np.random.default_rng(5)
        points = rng.random((25, 3)) + 0.05
        base = hypervolume(points, (0, 0, 0))
        for permutation in ([1, 0, 2], [2, 1, 0], [1, 2, 0]):
            assert hypervolume(points[:, permutation],
                               (0, 0, 0)) == pytest.approx(base)

    def test_monte_carlo_cross_check(self):
        rng = np.random.default_rng(11)
        points = rng.random((12, 3))
        exact = hypervolume(points, (0, 0, 0))
        samples = rng.random((200_000, 3))
        dominated = np.zeros(samples.shape[0], dtype=bool)
        for point in points:
            dominated |= np.all(samples <= point, axis=1)
        estimate = dominated.mean()
        assert exact == pytest.approx(estimate, abs=4e-3)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.1, 5), st.floats(0.1, 5),
                              st.floats(0.1, 5)),
                    min_size=1, max_size=20))
    def test_monotone_under_point_addition(self, points):
        points = np.asarray(points, dtype=float)
        reference = (0.0, 0.0, 0.0)
        partial = hypervolume(points[:-1], reference) if len(points) > 1 \
            else 0.0
        assert hypervolume(points, reference) >= partial - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.1, 5), st.floats(0.1, 5),
                              st.floats(0.1, 5)),
                    min_size=1, max_size=15))
    def test_bounded_by_bounding_box(self, points):
        points = np.asarray(points, dtype=float)
        volume = hypervolume(points, (0.0, 0.0, 0.0))
        box = np.prod(points.max(axis=0))
        best_single = max(np.prod(point) for point in points)
        assert best_single - 1e-12 <= volume <= box + 1e-12
