"""Importance-sampling yield estimator tests.

The synthetic problem has an analytically known yield: the "performance"
is a single global parameter (``dvto_n``), so a one-sided spec at
``t`` sigma has true yield ``Phi(t)``.  The estimator must land inside
its own confidence interval around that truth and beat plain Monte Carlo
on interval width for rare failures.  Stochastic assertions use the
CI-derived tolerances of :mod:`statcheck` (99.9 % sampling intervals)
instead of magic constants.
"""

from math import erf, sqrt

import numpy as np
import pytest

from repro.mc import MCConfig, monte_carlo
from repro.measure import Spec, SpecSet
from repro.process import C35
from repro.yieldmodel import (ImportanceSamplingConfig,
                              ImportanceSamplingEstimate,
                              estimate_yield, estimate_yield_importance,
                              global_sigmas, normal_interval, shifted_sample,
                              z_value)
from statcheck import DEFAULT_CONFIDENCE, assert_mean_close, mean_halfwidth

SIGMA = C35.global_variation.sigma_vto_n


def _phi(z: float) -> float:
    return 0.5 * (1.0 + erf(z / sqrt(2.0)))


def _synthetic_problem(t_sigma: float):
    """Evaluator + spec whose true yield is ``Phi(t_sigma)``."""
    def evaluator(sample):
        return {"metric": sample.dvto_n}

    specs = SpecSet([Spec("metric", "le", t_sigma * SIGMA, "V")])
    return evaluator, specs, _phi(t_sigma)


class TestHelpers:
    def test_z_value(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        with pytest.raises(ValueError):
            z_value(1.0)

    def test_normal_interval_clipped(self):
        lo, hi = normal_interval(0.999, 0.01)
        assert 0.97 < lo < 0.999 and hi == 1.0

    def test_global_sigmas_order(self):
        gv = C35.global_variation
        np.testing.assert_array_equal(
            global_sigmas(C35),
            [gv.sigma_vto_n, gv.sigma_kp_n, gv.sigma_vto_p,
             gv.sigma_kp_p, gv.sigma_cap])


class TestShiftedSample:
    def test_zero_shift_has_unit_weights(self):
        rng = np.random.default_rng(0)
        sample, weights = shifted_sample(C35, 50, rng, np.zeros(5),
                                         include_mismatch=False)
        np.testing.assert_allclose(weights, 1.0)
        assert sample.size == 50

    def test_shift_moves_mean(self):
        # The sample mean of 4000 draws is within the 99.9% sampling
        # interval of the shifted population mean.
        rng = np.random.default_rng(1)
        shift = np.array([2.0, 0.0, 0.0, 0.0, 0.0])
        sample, _ = shifted_sample(C35, 4000, rng, shift,
                                   include_mismatch=False)
        assert np.mean(sample.dvto_n) == pytest.approx(
            2.0 * SIGMA, abs=mean_halfwidth(SIGMA, 4000))

    def test_weights_restore_nominal_expectation(self):
        # E_q[w * f(x)] must equal E_p[f(x)]; take f = indicator(x > 2s).
        rng = np.random.default_rng(2)
        shift = np.array([2.0, 0.0, 0.0, 0.0, 0.0])
        sample, weights = shifted_sample(C35, 20000, rng, shift,
                                         include_mismatch=False)
        indicator = sample.dvto_n > 2.0 * SIGMA
        assert_mean_close(weights * indicator, 1.0 - _phi(2.0),
                          label="weighted tail expectation")

    def test_bad_shift_shape_rejected(self):
        with pytest.raises(ValueError):
            shifted_sample(C35, 10, np.random.default_rng(0), np.zeros(3))


class TestEstimator:
    def test_known_yield_within_ci(self):
        evaluator, specs, true_yield = _synthetic_problem(2.5)
        estimate = estimate_yield_importance(
            evaluator, specs, C35,
            ImportanceSamplingConfig(n_samples=500, pilot_samples=200,
                                     seed=11, include_mismatch=False))
        assert isinstance(estimate, ImportanceSamplingEstimate)
        lo, hi = estimate.interval
        assert lo <= true_yield <= hi
        # Bound the point estimate by its own 99.9% sampling interval
        # rather than a magic constant.
        assert estimate.yield_estimate == pytest.approx(
            true_yield,
            abs=z_value(DEFAULT_CONFIDENCE) * estimate.std_error)

    def test_beats_direct_mc_interval_width(self):
        # For a ~0.6% failure probability the mean-shift proposal should
        # tighten the interval by well over 2x at equal sample count.
        evaluator, specs, _ = _synthetic_problem(2.5)
        config = ImportanceSamplingConfig(n_samples=500, pilot_samples=200,
                                          seed=11, include_mismatch=False)
        is_estimate = estimate_yield_importance(evaluator, specs, C35,
                                                config)
        population = monte_carlo(
            evaluator, C35,
            MCConfig(n_samples=500, seed=11, include_mismatch=False))
        direct = estimate_yield(population, specs)
        is_width = is_estimate.interval[1] - is_estimate.interval[0]
        mc_width = direct.interval[1] - direct.interval[0]
        assert is_width < mc_width / 2
        assert is_estimate.consistent_with(direct)

    def test_reproducible_for_fixed_seed(self):
        evaluator, specs, _ = _synthetic_problem(2.0)
        config = ImportanceSamplingConfig(n_samples=200, pilot_samples=100,
                                          seed=3, include_mismatch=False)
        a = estimate_yield_importance(evaluator, specs, C35, config)
        b = estimate_yield_importance(evaluator, specs, C35, config)
        assert a.yield_estimate == b.yield_estimate
        np.testing.assert_array_equal(a.shift_sigma, b.shift_sigma)

    def test_pilot_failures_drive_shift(self):
        # A loose spec (t = 1 sigma) fails often in the pilot, so the
        # shift comes from actual failures and points toward +dvto_n.
        evaluator, specs, _ = _synthetic_problem(1.0)
        estimate = estimate_yield_importance(
            evaluator, specs, C35,
            ImportanceSamplingConfig(n_samples=300, pilot_samples=200,
                                     seed=5, include_mismatch=False))
        assert estimate.pilot_failures > 0
        assert estimate.shift_sigma[0] > 0.5

    def test_diagnostics_populated(self):
        evaluator, specs, _ = _synthetic_problem(2.0)
        estimate = estimate_yield_importance(
            evaluator, specs, C35,
            ImportanceSamplingConfig(n_samples=200, pilot_samples=50,
                                     seed=7, include_mismatch=False))
        assert 0 < estimate.effective_samples <= estimate.n_samples
        assert estimate.n_samples == 200
        assert estimate.pilot_samples == 50
        text = estimate.describe()
        assert "ESS" in text and "proposal shift" in text

    def test_tiny_runs_rejected(self):
        evaluator, specs, _ = _synthetic_problem(2.0)
        with pytest.raises(ValueError):
            estimate_yield_importance(
                evaluator, specs, C35,
                ImportanceSamplingConfig(n_samples=1))
