"""Tests for the topology-lint subsystem (repro.lint).

Coverage map:

* per-rule positive/negative coverage from the ``tests/netlists``
  fixture corpus (every rule has a triggering and a passing netlist);
* report/finding mechanics: severity ordering, exit codes, JSON;
* the extension hooks: rule registry, ``only`` selection,
  ``lint_branches()`` element override;
* flow gating: ``preflight_lint`` modes and the stage-0 gate of
  ``run_model_build_flow`` rejecting a broken testbench with a
  :class:`LintGateError` (and the counterfactual: the same circuit
  crashes the solver when lint is off);
* the built-in designs lint clean at strict (tier-1 regression);
* the ``repro lint`` CLI verb and its exit-code convention;
* hypothesis properties: randomly sized connected RC ladders never
  produce error findings, and deleting any ground-path resistor from
  one always produces at least one.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dc_operating_point
from repro.behavioral import BehavioralOTA
from repro.circuit import (Capacitor, Circuit, Inductor, Resistor,
                           VoltageSource)
from repro.circuit.netlist import Element
from repro.designs.filter2 import (FilterCaps, build_filter_behavioral,
                                   build_filter_transistor)
from repro.designs.miller import MillerParameters, build_miller_ota
from repro.designs.ota import OTAParameters, build_ota
from repro.errors import LintError, LintGateError, SingularMatrixError
from repro.lint import (LINT_MODES, LINT_RULES, CircuitGraph, Finding,
                        LintReport, lint_circuit, lint_netlist,
                        preflight_lint)
from repro.process import C35

# ---------------------------------------------------------------------------
# corpus-driven per-rule coverage
# ---------------------------------------------------------------------------

#: fixture name -> (rule id it must trigger, severity of that finding)
BAD_FIXTURES = {
    "bad_no_ground": ("missing-ground", "error"),
    "bad_duplicate": ("duplicate-element", "error"),
    "bad_floating_node": ("floating-node", "warning"),
    "bad_island": ("disconnected-island", "error"),
    "bad_cap_cut": ("no-dc-path", "error"),
    "bad_isource_cutset": ("isource-cutset", "error"),
    "bad_vloop": ("vsource-loop", "error"),
    "bad_inductor_loop": ("vsource-loop", "error"),
    "bad_shorted_r": ("shorted-element", "warning"),
    "bad_shorted_vsource": ("shorted-element", "error"),
    "bad_port_unused": ("subckt-port-unused", "warning"),
    "bad_unused_subckt": ("subckt-unused", "info"),
    "bad_malformed_number": ("parse-error", "error"),
    "bad_recursive_subckt": ("parse-error", "error"),
}

GOOD_FIXTURES = [
    "good_divider", "good_rc_ladder", "good_hierarchical",
    "good_mosfet_amp", "good_rlc", "good_suffixes", "good_divby2_chain",
    "good_params",
]


@pytest.mark.parametrize("name", sorted(BAD_FIXTURES))
def test_bad_fixture_triggers_its_rule(netlist, name):
    rule_id, severity = BAD_FIXTURES[name]
    report = lint_netlist(netlist(name), models=C35.models, source=name)
    hits = [f for f in report.findings if f.rule == rule_id]
    assert hits, f"{name} did not trigger {rule_id}: {report.render_text()}"
    assert any(f.severity == severity for f in hits)


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_lints_clean(netlist, name):
    report = lint_netlist(netlist(name), models=C35.models, source=name)
    assert report.ok(strict=True), report.render_text()
    assert report.findings == []


def test_every_rule_has_a_triggering_fixture():
    covered = {rule_id for rule_id, _ in BAD_FIXTURES.values()}
    assert set(LINT_RULES) <= covered


def test_findings_carry_line_numbers(netlist):
    report = lint_netlist(netlist("bad_shorted_vsource"), source="x")
    (finding,) = [f for f in report.findings if f.rule == "shorted-element"]
    assert finding.line_no == 4  # the V2 card
    assert finding.elements == ("V2",)


def test_parse_error_finding_carries_line(netlist):
    report = lint_netlist(netlist("bad_malformed_number"), source="x")
    (finding,) = report.findings
    assert finding.rule == "parse-error"
    assert finding.line_no == 3
    assert "ohms" in finding.message


# ---------------------------------------------------------------------------
# report mechanics
# ---------------------------------------------------------------------------

def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError, match="severity"):
        Finding("x", "fatal", "boom")


def test_report_sorting_and_counts():
    report = LintReport(source="s")
    report.add(Finding("a", "info", "i"))
    report.add(Finding("b", "error", "e", line_no=9))
    report.add(Finding("c", "warning", "w", line_no=2))
    report.add(Finding("d", "error", "e2", line_no=3))
    ordered = [f.rule for f in report.sorted_findings()]
    assert ordered == ["d", "b", "c", "a"]  # errors first, then by line
    assert report.count("error") == 2
    assert report.has_errors and report.has_warnings
    assert not report.ok()
    assert report.exit_code() == 1


def test_report_exit_code_convention():
    clean = LintReport()
    assert clean.exit_code() == 0 and clean.exit_code(strict=True) == 0
    warn = LintReport(findings=[Finding("r", "warning", "w")])
    assert warn.exit_code() == 0
    assert warn.exit_code(strict=True) == 1
    info = LintReport(findings=[Finding("r", "info", "i")])
    assert info.exit_code(strict=True) == 0


def test_report_json_round_trip(netlist):
    report = lint_netlist(netlist("bad_island"), source="bad_island")
    payload = json.loads(report.render_json())
    assert payload["source"] == "bad_island"
    assert payload["ok"] is False
    assert payload["counts"]["error"] >= 1
    (finding,) = [f for f in payload["findings"]
                  if f["rule"] == "disconnected-island"]
    assert set(finding["nodes"]) == {"x", "y"}


# ---------------------------------------------------------------------------
# registry and extension hooks
# ---------------------------------------------------------------------------

def test_only_selection_restricts_rules(netlist):
    text = netlist("bad_shorted_r")
    full = lint_netlist(text)
    assert any(f.rule == "shorted-element" for f in full.findings)
    none = lint_netlist(text, only=["missing-ground"])
    assert none.findings == []


def test_unknown_rule_id_rejected():
    circuit = Circuit("c")
    circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
    circuit.add(Resistor("R1", "a", "0", 1e3))
    with pytest.raises(LintError, match="unknown lint rule"):
        lint_circuit(circuit, only=["no-such-rule"])


def test_duplicate_rule_registration_rejected():
    from repro.lint.rules import rule
    with pytest.raises(LintError, match="duplicate lint rule"):
        rule("missing-ground", "error", "again")(lambda ctx: iter(()))


def test_unknown_element_classified_conservatively():
    # A custom Element without lint_branches: all distinct node pairs
    # become DC-conducting branches, so it cannot false-positive.
    class Weird(Element):
        pass

    circuit = Circuit("c")
    circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
    circuit.add(Weird("U1", ("a", "b", "c")))
    circuit.add(Resistor("R1", "b", "0", 1e3))
    circuit.add(Resistor("R2", "c", "0", 1e3))
    assert lint_circuit(circuit).ok(strict=True)


def test_unknown_element_tied_terminals_not_flagged():
    # Tied terminals on an unknown device are not reported as shorts --
    # the lint cannot judge devices it does not know.
    class Weird(Element):
        pass

    circuit = Circuit("c")
    circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
    circuit.add(Weird("U1", ("a", "a", "b")))
    circuit.add(Resistor("R1", "b", "0", 1e3))
    report = lint_circuit(circuit)
    assert not any(f.rule == "shorted-element" for f in report.findings)


def test_lint_branches_override_used():
    captured = []

    class Custom(Element):
        def lint_branches(self):
            captured.append(self.name)
            return [(self.nodes[0], self.nodes[1], "isource")]

    circuit = Circuit("c")
    circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
    circuit.add(Resistor("R1", "a", "0", 1e3))
    circuit.add(Custom("U1", ("a", "n")))
    report = lint_circuit(circuit)
    assert captured == ["U1"]
    # The declared isource branch means n hangs on a current source.
    assert any(f.rule == "isource-cutset" for f in report.findings)


def test_behavioral_ota_unity_feedback_not_a_short():
    # out == inn is a legitimate unity-feedback configuration.
    circuit = Circuit("c")
    circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, ac_mag=1.0))
    circuit.add(BehavioralOTA("OTA", "out", "in", "out", gain=100.0, ro=1e6))
    circuit.add(Capacitor("CL", "out", "0", 1e-12))
    assert lint_circuit(circuit).ok(strict=True)


# ---------------------------------------------------------------------------
# graph view sanity
# ---------------------------------------------------------------------------

def test_graph_views_distinguish_dc_and_hyperedge():
    circuit = Circuit("c")
    circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
    circuit.add(Capacitor("C1", "in", "out", 1e-12))
    circuit.add(Resistor("R1", "out", "x", 1e3))
    graph = CircuitGraph(circuit)
    assert graph.reachable_from_ground() == {"0", "in", "out", "x"}
    assert graph.dc_reachable_from_ground() == {"0", "in"}


def test_ground_aliases_canonicalised():
    circuit = Circuit("c")
    circuit.add(VoltageSource("V1", "a", "GND", dc=1.0))
    circuit.add(Resistor("R1", "a", "gnd", 1e3))
    graph = CircuitGraph(circuit)
    assert graph.has_ground
    assert lint_circuit(circuit).ok(strict=True)


# ---------------------------------------------------------------------------
# flow gating
# ---------------------------------------------------------------------------

def _broken_circuit() -> Circuit:
    """A circuit the lint rejects (V+L source loop -> singular MNA)."""
    circuit = Circuit("broken")
    circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
    circuit.add(Inductor("L1", "a", "0", 1e-3))
    circuit.add(Resistor("R1", "a", "0", 1e3))
    return circuit


def test_preflight_modes():
    circuit = _broken_circuit()
    assert preflight_lint(circuit, "off") is None
    report = preflight_lint(circuit, "warn")
    assert isinstance(report, LintReport) and report.has_errors
    with pytest.raises(LintGateError) as excinfo:
        preflight_lint(circuit, "strict", stage="unit test")
    assert isinstance(excinfo.value.report, LintReport)
    assert excinfo.value.stage == "unit test"
    assert "vsource-loop" in str(excinfo.value)
    with pytest.raises(LintError, match="unknown lint mode"):
        preflight_lint(circuit, "bogus")
    assert set(LINT_MODES) == {"strict", "warn", "off"}


def test_flow_rejects_broken_testbench(monkeypatch):
    # Stage 0 must fail fast with the report, before any optimisation.
    import repro.flow.pipeline as pipeline
    from repro.flow import reduced_config, run_model_build_flow
    monkeypatch.setattr(pipeline, "build_ota",
                        lambda *args, **kwargs: _broken_circuit())
    with pytest.raises(LintGateError) as excinfo:
        run_model_build_flow(reduced_config())
    assert any(f.rule == "vsource-loop"
               for f in excinfo.value.report.findings)


def test_counterfactual_solver_crashes_without_lint():
    # The same circuit the gate rejects produces the unreadable
    # singular-matrix failure when simulated directly -- this is the
    # traceback the lint stage replaces.
    with pytest.raises(SingularMatrixError):
        dc_operating_point(_broken_circuit())


# ---------------------------------------------------------------------------
# built-in designs regression (tier-1): everything we ship lints clean
# ---------------------------------------------------------------------------

DESIGN_BUILDERS = {
    "ota": lambda: build_ota(OTAParameters()),
    "miller": lambda: build_miller_ota(MillerParameters()),
    "filter2-behavioral": lambda: build_filter_behavioral(
        FilterCaps(), ota_gain_db=70.0, ota_ro=1e6,
        parasitic_pole_hz=50e6),
    "filter2-transistor": lambda: build_filter_transistor(
        FilterCaps(), OTAParameters()),
}


@pytest.mark.parametrize("name", sorted(DESIGN_BUILDERS))
def test_builtin_design_lints_clean_at_strict(name):
    report = lint_circuit(DESIGN_BUILDERS[name]())
    assert report.ok(strict=True), report.render_text()


# ---------------------------------------------------------------------------
# CLI verb
# ---------------------------------------------------------------------------

def test_cli_lint_clean_file_exits_zero(netlist_path, capsys):
    from repro.cli import main
    assert main(["lint", str(netlist_path("good_divider"))]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_error_file_exits_nonzero(netlist_path, capsys):
    from repro.cli import main
    assert main(["lint", str(netlist_path("bad_vloop"))]) == 1
    assert "vsource-loop" in capsys.readouterr().out


def test_cli_lint_warning_exit_depends_on_strict(netlist_path):
    from repro.cli import main
    path = str(netlist_path("bad_shorted_r"))
    assert main(["lint", path]) == 0
    assert main(["lint", "--strict", path]) == 1


def test_cli_lint_many_files_worst_exit_wins(netlist_path):
    from repro.cli import main
    assert main(["lint", str(netlist_path("good_divider")),
                 str(netlist_path("bad_no_ground"))]) == 1


def test_cli_lint_missing_file_exits_two(tmp_path, capsys):
    from repro.cli import main
    assert main(["lint", str(tmp_path / "nope.cir")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_lint_json_output(netlist_path, capsys):
    from repro.cli import main
    code = main(["lint", "--json", str(netlist_path("bad_cap_cut")),
                 str(netlist_path("good_rlc"))])
    assert code == 1
    reports = json.loads(capsys.readouterr().out)
    assert [r["ok"] for r in reports] == [False, True]
    assert any(f["rule"] == "no-dc-path" for f in reports[0]["findings"])


def test_cli_lint_uses_pdk_models(netlist_path):
    # good_mosfet_amp defines its model inline; the C35-preseeded parser
    # must also accept bare 'nmos'/'pmos' references (as examples do).
    from repro.cli import main
    assert main(["lint", str(netlist_path("good_mosfet_amp"))]) == 0


# ---------------------------------------------------------------------------
# hypothesis properties
# ---------------------------------------------------------------------------

def _rc_ladder(resistances) -> Circuit:
    """A series RC ladder: V1 drives n0, R_i spans n_i -> n_{i+1}, every
    internal node has a capacitor to ground.  Always connected, always
    DC-biased -- must never produce an error finding."""
    circuit = Circuit("ladder")
    circuit.add(VoltageSource("V1", "n0", "0", dc=1.0))
    for i, value in enumerate(resistances):
        circuit.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", value))
        circuit.add(Capacitor(f"C{i}", f"n{i + 1}", "0", 1e-12))
    return circuit


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=1.0, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=12))
def test_connected_rc_ladder_never_errors(resistances):
    report = lint_circuit(_rc_ladder(resistances))
    assert not report.has_errors, report.render_text()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_cutting_any_ground_path_resistor_errors(data):
    n = data.draw(st.integers(min_value=1, max_value=10), label="sections")
    k = data.draw(st.integers(min_value=0, max_value=n - 1), label="cut")
    circuit = _rc_ladder(np.full(n, 1e3))
    circuit.remove(f"R{k}")
    report = lint_circuit(circuit)
    assert report.has_errors, (
        f"removing R{k} of {n} left no error finding:\n"
        f"{report.render_text()}")
