"""Monte-Carlo machinery tests: streams, samplers, engine, statistics."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.mc import (MCConfig, PopulationSummary, child_streams, cpk,
                      latin_hypercube_normal, monte_carlo,
                      monte_carlo_points, relative_spread_pct, stream,
                      summarize)
from repro.process import C35


class TestStreams:
    def test_same_key_same_stream(self):
        assert stream(1, "mc").random() == stream(1, "mc").random()

    def test_different_keys_differ(self):
        assert stream(1, "a").random() != stream(1, "b").random()

    def test_different_seeds_differ(self):
        assert stream(1, "mc").random() != stream(2, "mc").random()

    def test_child_streams_independent_and_reproducible(self):
        a = child_streams(7, "pts", 3)
        b = child_streams(7, "pts", 3)
        for ga, gb in zip(a, b, strict=True):
            assert ga.random() == gb.random()
        values = [g.random() for g in child_streams(7, "pts", 3)]
        assert len(set(values)) == 3


class TestLatinHypercube:
    def test_shape(self):
        rng = np.random.default_rng(0)
        samples = latin_hypercube_normal(rng, 100, 4)
        assert samples.shape == (100, 4)

    def test_stratification(self):
        # Mapping back through the normal CDF must give one sample per
        # 1/n stratum in every dimension.
        from math import erf
        rng = np.random.default_rng(1)
        n = 50
        samples = latin_hypercube_normal(rng, n, 2)
        uniforms = 0.5 * (1 + np.vectorize(erf)(samples / np.sqrt(2)))
        for dim in range(2):
            strata = np.floor(uniforms[:, dim] * n).astype(int)
            assert len(np.unique(strata)) == n

    def test_moments_better_than_iid(self):
        rng = np.random.default_rng(2)
        samples = latin_hypercube_normal(rng, 200, 1)[:, 0]
        assert abs(np.mean(samples)) < 0.02
        assert np.std(samples) == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            latin_hypercube_normal(rng, 0, 1)


class TestErf:
    def test_matches_math_erf_to_machine_precision(self):
        import math
        from repro.mc.sampler import erf
        xs = np.concatenate([
            np.linspace(-8.0, 8.0, 20001),
            [0.0, 0.46875, -0.46875, 4.0, -4.0, 1e-300, 30.0, -30.0],
        ])
        reference = np.array([math.erf(v) for v in xs])
        np.testing.assert_allclose(erf(xs), reference, rtol=0, atol=5e-16)

    def test_scalar_and_shape_preserving(self):
        from repro.mc.sampler import erf
        assert erf(0.0) == 0.0
        assert erf(np.zeros((3, 2))).shape == (3, 2)

    def test_nan_and_inf_propagate(self):
        from repro.mc.sampler import erf
        out = erf(np.array([np.nan, np.inf, -np.inf]))
        assert np.isnan(out[0])
        assert out[1] == 1.0 and out[2] == -1.0

    def test_probit_roundtrip(self):
        from repro.mc.sampler import _probit, erf
        p = np.linspace(1e-9, 1 - 1e-9, 10001)
        x = _probit(p)
        back = 0.5 * (1.0 + erf(x / np.sqrt(2.0)))
        np.testing.assert_allclose(back, p, rtol=0, atol=1e-12)
        assert np.all(np.diff(x) > 0)  # strictly monotone


class TestStatistics:
    def test_summarize(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        s = summarize(data)
        assert isinstance(s, PopulationSummary)
        assert s.mean == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.median == 3.0
        assert "n=5" in s.describe()

    def test_summarize_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            summarize([1.0, np.nan])

    def test_summarize_needs_two(self):
        with pytest.raises(ValueError):
            summarize([1.0])

    def test_relative_spread(self):
        rng = np.random.default_rng(0)
        data = rng.normal(100.0, 1.0, size=(3, 5000))
        spread = relative_spread_pct(data, k_sigma=3.0)
        np.testing.assert_allclose(spread, 3.0, rtol=0.1)

    def test_cpk_two_sided(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0.0, 1.0, 10000)
        assert cpk(data, lower=-3.0, upper=3.0) == pytest.approx(1.0,
                                                                 abs=0.05)

    def test_cpk_one_sided(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10.0, 1.0, 10000)
        assert cpk(data, lower=7.0) == pytest.approx(1.0, abs=0.05)

    def test_cpk_requires_limit(self):
        with pytest.raises(ValueError):
            cpk([1.0, 2.0])

    def test_cpk_zero_std_capable(self):
        assert cpk([5.0, 5.0, 5.0], lower=0.0) == np.inf

    def test_cpk_zero_std_violating_is_not_capable(self):
        # Regression: a degenerate population sitting beyond a limit used
        # to report +inf ("perfectly capable"); it must report -inf.
        assert cpk([5.0, 5.0, 5.0], upper=4.0) == -np.inf
        assert cpk([5.0, 5.0, 5.0], lower=6.0) == -np.inf
        assert cpk([5.0, 5.0, 5.0], lower=0.0, upper=4.0) == -np.inf

    def test_cpk_zero_std_on_the_limit(self):
        assert cpk([5.0, 5.0, 5.0], upper=5.0) == 0.0

    def test_relative_spread_zero_mean_raises(self):
        # Regression: a zero-mean population used to silently return
        # +/-inf; the relative spread is undefined there.
        with pytest.raises(ValueError, match="mean is zero"):
            relative_spread_pct([-1.0, 1.0])
        with pytest.raises(ValueError, match="mean is zero"):
            # Vectorised form: one zero-mean row poisons the call.
            relative_spread_pct(np.array([[1.0, 3.0], [-1.0, 1.0]]))

    def test_relative_spread_single_sample_raises(self):
        # Regression: a length-1 axis used to return NaN from ddof=1
        # with only a RuntimeWarning; it must raise like summarize.
        with pytest.raises(ValueError, match="at least two"):
            relative_spread_pct([5.0])
        with pytest.raises(ValueError, match="at least two"):
            relative_spread_pct(np.ones((4, 1)), axis=-1)

    def test_relative_spread_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            relative_spread_pct([1.0, np.nan, 3.0])

    def test_relative_spread_valid_axis(self):
        # axis=0 with >= 2 rows is fine even when other axes are short.
        data = np.array([[99.0], [101.0]])
        np.testing.assert_allclose(relative_spread_pct(data, axis=0),
                                   [3.0 * np.std(data, ddof=1) / 100.0
                                    * 100.0])

    def test_cpk_rejects_nan(self):
        # Regression: summarize rejects NaN samples but cpk used to
        # silently propagate them into a NaN index -- a failed lane
        # could fake a capability number.
        with pytest.raises(ValueError, match="NaN"):
            cpk([1.0, np.nan, 3.0], lower=0.0)

    def test_cpk_single_sample_raises(self):
        # Validation identical to summarize: ddof=1 needs n >= 2.
        with pytest.raises(ValueError, match="at least two"):
            cpk([5.0], lower=0.0)


class TestMCConfigValidation:
    """Degenerate configurations must fail at construction, not deep
    inside the engine (a zero-lane chunk used to crash later at
    ``parts[0]`` or inside ``pdk.sample``)."""

    def test_zero_samples_rejected(self):
        with pytest.raises(ReproError, match="n_samples"):
            MCConfig(n_samples=0)

    def test_negative_samples_rejected(self):
        with pytest.raises(ReproError, match="n_samples"):
            MCConfig(n_samples=-5)

    def test_zero_chunk_lanes_rejected(self):
        with pytest.raises(ReproError, match="chunk_lanes"):
            MCConfig(chunk_lanes=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError, match="workers"):
            MCConfig(workers=-1)

    def test_valid_boundaries_accepted(self):
        config = MCConfig(n_samples=1, chunk_lanes=1, workers=0)
        assert config.n_samples == 1 and config.chunk_lanes == 1


class TestEngineSingle:
    @staticmethod
    def fake_evaluator(sample):
        # A deterministic function of the die parameters.
        return {"metric": 10.0 + 100.0 * sample.dvto_n,
                "other": sample.kp_scale_n}

    def test_shapes_and_reproducibility(self):
        config = MCConfig(n_samples=64, seed=5)
        a = monte_carlo(self.fake_evaluator, C35, config)
        b = monte_carlo(self.fake_evaluator, C35, config)
        assert a["metric"].shape == (64,)
        np.testing.assert_array_equal(a["metric"], b["metric"])

    def test_seed_changes_samples(self):
        a = monte_carlo(self.fake_evaluator, C35, MCConfig(n_samples=16, seed=1))
        b = monte_carlo(self.fake_evaluator, C35, MCConfig(n_samples=16, seed=2))
        assert not np.allclose(a["metric"], b["metric"])

    def test_variation_toggles(self):
        config = MCConfig(n_samples=32, seed=3, include_global=False)
        result = monte_carlo(self.fake_evaluator, C35, config)
        np.testing.assert_allclose(result["metric"], 10.0)


class TestEnginePoints:
    @staticmethod
    def make_evaluator(offsets):
        def evaluator(point_indices, repeats, die_sample):
            # value = point offset + die-level noise, tiled point-major.
            base = np.repeat(offsets[point_indices], repeats)
            return {"metric": base + die_sample.dvto_n}
        return evaluator

    def test_point_major_reshape(self):
        offsets = np.array([0.0, 100.0, 200.0, 300.0])
        config = MCConfig(n_samples=25, seed=9, chunk_lanes=60)
        result = monte_carlo_points(self.make_evaluator(offsets), 4, C35,
                                    config)
        metric = result["metric"]
        assert metric.shape == (4, 25)
        means = metric.mean(axis=1)
        np.testing.assert_allclose(means, offsets, atol=0.05)

    def test_chunking_covers_all_points(self):
        offsets = np.arange(7, dtype=float)
        config = MCConfig(n_samples=10, seed=9, chunk_lanes=25)  # 2 pts/chunk
        result = monte_carlo_points(self.make_evaluator(offsets), 7, C35,
                                    config)
        assert result["metric"].shape == (7, 10)

    def test_progress_callback(self):
        offsets = np.zeros(3)
        seen = []
        config = MCConfig(n_samples=5, seed=1, chunk_lanes=5)
        monte_carlo_points(self.make_evaluator(offsets), 3, C35, config,
                           progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (3, 3)
        assert len(seen) == 3  # one chunk per point at 5 lanes/chunk

    def test_reproducible_for_fixed_config(self):
        offsets = np.zeros(2)
        config = MCConfig(n_samples=8, seed=4)
        a = monte_carlo_points(self.make_evaluator(offsets), 2, C35, config)
        b = monte_carlo_points(self.make_evaluator(offsets), 2, C35, config)
        np.testing.assert_array_equal(a["metric"], b["metric"])

    def test_stage_key_changes_population(self):
        offsets = np.zeros(2)
        config = MCConfig(n_samples=8, seed=4)
        a = monte_carlo_points(self.make_evaluator(offsets), 2, C35, config)
        b = monte_carlo_points(self.make_evaluator(offsets), 2, C35, config,
                               stage="direct-mc-gen0")
        assert not np.allclose(a["metric"], b["metric"])


class TestChunkLanesContract:
    """The audit of the ``chunk_lanes`` memory/reproducibility contract.

    ``chunk_lanes`` bounds the simultaneous batch lanes per stacked
    solve (the memory knob; for point sweeps the effective bound is
    ``max(chunk_lanes, n_samples)`` because a point's sample block is
    atomic) and fixes the chunk geometry.  These tests pin the
    documented behaviour: chunking *is* exercised when the lane count
    exceeds ``chunk_lanes``, results are bit-reproducible for a fixed
    chunk size, and a different chunk size yields a different (equally
    valid) population.
    """

    @staticmethod
    def make_counting_evaluator(calls):
        def evaluator(point_indices, repeats, die_sample):
            calls.append((point_indices.copy(), die_sample.size))
            return {"metric": die_sample.dvto_n}
        return evaluator

    def test_chunking_exercised_below_lane_count(self):
        # 6 points x 10 samples = 60 lanes against chunk_lanes=20:
        # the engine must split into 3 chunks of 2 points each, and no
        # chunk may exceed the lane bound.  backend pinned to serial:
        # the counting closure mutates parent state, which a process
        # backend selected via REPRO_EXEC_BACKEND would not see.
        calls = []
        config = MCConfig(n_samples=10, seed=2, chunk_lanes=20,
                          backend="serial")
        result = monte_carlo_points(self.make_counting_evaluator(calls),
                                    6, C35, config)
        assert result["metric"].shape == (6, 10)
        assert len(calls) == 3
        assert all(lanes <= config.chunk_lanes for _, lanes in calls)
        covered = np.concatenate([indices for indices, _ in calls])
        np.testing.assert_array_equal(np.sort(covered), np.arange(6))

    def test_point_block_atomic_when_samples_exceed_lanes(self):
        # A point's sample block is never split: with n_samples above
        # chunk_lanes each chunk carries exactly one full point, so the
        # effective lane bound is max(chunk_lanes, n_samples).
        calls = []
        config = MCConfig(n_samples=30, seed=2, chunk_lanes=10,
                          backend="serial")
        result = monte_carlo_points(self.make_counting_evaluator(calls),
                                    3, C35, config)
        assert result["metric"].shape == (3, 30)
        assert [lanes for _, lanes in calls] == [30, 30, 30]

    def test_single_design_chunking_exercised(self):
        sizes = []

        def evaluator(sample):
            sizes.append(sample.size)
            return {"metric": sample.dvto_n}

        result = monte_carlo(evaluator, C35,
                             MCConfig(n_samples=25, seed=2, chunk_lanes=10,
                                      backend="serial"))
        assert result["metric"].shape == (25,)
        assert sizes == [10, 10, 5]

    def test_chunk_size_changes_population_not_statistics(self):
        def evaluator(point_indices, repeats, die_sample):
            return {"metric": die_sample.dvto_n}

        coarse = monte_carlo_points(evaluator, 4, C35,
                                    MCConfig(n_samples=50, seed=8,
                                             chunk_lanes=200))
        fine = monte_carlo_points(evaluator, 4, C35,
                                  MCConfig(n_samples=50, seed=8,
                                           chunk_lanes=100))
        # Different draw -> different bits...
        assert not np.array_equal(coarse["metric"], fine["metric"])
        # ...same distribution (both are N(0, sigma_vto_n) populations).
        sigma = C35.global_variation.sigma_vto_n
        for data in (coarse["metric"], fine["metric"]):
            assert abs(np.mean(data)) < 4 * sigma / np.sqrt(data.size)
            assert np.std(data) == pytest.approx(sigma, rel=0.35)

    def test_fixed_chunk_size_is_bit_reproducible(self):
        def evaluator(point_indices, repeats, die_sample):
            return {"metric": die_sample.dvto_n}

        config = MCConfig(n_samples=10, seed=3, chunk_lanes=20)
        a = monte_carlo_points(evaluator, 5, C35, config)
        b = monte_carlo_points(evaluator, 5, C35, config)
        np.testing.assert_array_equal(a["metric"], b["metric"])
