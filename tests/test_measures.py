"""AC measurement extraction tests on synthetic Bode data."""

import numpy as np
import pytest

from repro.analysis import log_frequencies
from repro.measure import (crossing_frequency, dc_gain_db, f3db,
                           gain_margin_db, passband_ripple_db, phase_margin,
                           stopband_attenuation_db, unity_gain_frequency,
                           value_at_frequency)


def two_pole_system(gain_db_0=50.0, f1=1e4, f2=5e7,
                    freqs=None):
    """Synthetic two-pole amplifier response with known margins."""
    if freqs is None:
        freqs = log_frequencies(10, 1e9, 30)
    a0 = 10 ** (gain_db_0 / 20)
    h = a0 / ((1 + 1j * freqs / f1) * (1 + 1j * freqs / f2))
    mag_db = 20 * np.log10(np.abs(h))[None, :]
    phase = np.degrees(np.unwrap(np.angle(h)))[None, :]
    return freqs, mag_db, phase


class TestDCGain:
    def test_first_point(self):
        freqs, mag, _ = two_pole_system(gain_db_0=42.0)
        assert dc_gain_db(mag)[0] == pytest.approx(42.0, abs=0.01)


class TestCrossing:
    def test_simple_falling_crossing(self):
        freqs = np.array([1.0, 10.0, 100.0, 1000.0])
        values = np.array([[3.0, 1.0, -1.0, -3.0]])
        crossing = crossing_frequency(freqs, values, 0.0)
        # Crossing between f=10 (value 1) and f=100 (value -1):
        # frac = 0.5 in log-f -> 10**1.5.
        assert crossing[0] == pytest.approx(10 ** 1.5, rel=1e-9)

    def test_rising_crossing(self):
        freqs = np.array([1.0, 10.0, 100.0])
        values = np.array([[-1.0, 0.5, 2.0]])
        crossing = crossing_frequency(freqs, values, 0.0, rising=True)
        assert 1.0 < crossing[0] < 10.0

    def test_no_crossing_gives_nan(self):
        freqs = np.array([1.0, 10.0, 100.0])
        values = np.array([[1.0, 2.0, 3.0]])
        assert np.isnan(crossing_frequency(freqs, values, 0.0)[0])

    def test_per_lane_targets(self):
        freqs = np.array([1.0, 10.0, 100.0])
        values = np.tile(np.array([10.0, 0.0, -10.0]), (2, 1))
        crossings = crossing_frequency(freqs, values, np.array([5.0, -5.0]))
        assert crossings[0] < 10.0 < crossings[1]


class TestValueAtFrequency:
    def test_interpolates_log(self):
        freqs = np.array([10.0, 100.0, 1000.0])
        values = np.array([[0.0, 1.0, 2.0]])  # linear in log f
        assert value_at_frequency(freqs, values, 316.22776)[0] == \
            pytest.approx(1.5, abs=1e-6)

    def test_out_of_range_nan(self):
        freqs = np.array([10.0, 100.0])
        values = np.array([[0.0, 1.0]])
        assert np.isnan(value_at_frequency(freqs, values, 1.0)[0])
        assert np.isnan(value_at_frequency(freqs, values, np.nan)[0])


class TestUnityGainAndMargins:
    def test_ugf_single_pole_estimate(self):
        # For a 50 dB amp with f1 = 10 kHz, GBW = 316 * 10k = 3.16 MHz;
        # second pole at 50 MHz barely moves it.
        freqs, mag, phase = two_pole_system()
        ugf = unity_gain_frequency(freqs, mag)[0]
        assert ugf == pytest.approx(3.16e6, rel=0.05)

    def test_phase_margin_analytic(self):
        freqs, mag, phase = two_pole_system(f2=5e6)
        ugf = unity_gain_frequency(freqs, mag)[0]
        expected = 180 - np.degrees(
            np.arctan(ugf / 1e4) + np.arctan(ugf / 5e6))
        assert phase_margin(freqs, mag, phase)[0] == pytest.approx(
            expected, abs=0.6)

    def test_gain_margin_two_pole_infinite(self):
        # Two poles never reach -180 lag; gain margin is NaN.
        freqs, mag, phase = two_pole_system()
        assert np.isnan(gain_margin_db(freqs, mag, phase)[0])

    def test_gain_margin_three_pole(self):
        freqs = log_frequencies(10, 1e10, 30)
        a0 = 10 ** (60 / 20)
        h = a0 / ((1 + 1j * freqs / 1e4) * (1 + 1j * freqs / 1e6)
                  * (1 + 1j * freqs / 1e7))
        mag = 20 * np.log10(np.abs(h))[None, :]
        phase = np.degrees(np.unwrap(np.angle(h)))[None, :]
        gm = gain_margin_db(freqs, mag, phase)[0]
        assert np.isfinite(gm)

    def test_phase_margin_offset_invariance(self):
        # An inverting testbench adds 180 degrees everywhere; PM must not
        # change because it is measured relative to the DC phase.
        freqs, mag, phase = two_pole_system(f2=5e6)
        pm_a = phase_margin(freqs, mag, phase)[0]
        pm_b = phase_margin(freqs, mag, phase + 180.0)[0]
        assert pm_a == pytest.approx(pm_b, abs=1e-9)


class TestF3DB:
    def test_single_pole_f3db(self):
        freqs, mag, _ = two_pole_system(f1=1e4, f2=1e9)
        assert f3db(freqs, mag)[0] == pytest.approx(1e4, rel=0.03)


class TestFilterMaskMeasures:
    @staticmethod
    def butterworth2(f0, freqs):
        s = 1j * freqs / f0
        h = 1.0 / (s * s + np.sqrt(2) * s + 1)
        return 20 * np.log10(np.abs(h))[None, :]

    def test_ripple_flat_filter(self):
        freqs = log_frequencies(1e3, 1e8, 20)
        mag = self.butterworth2(5e6, freqs)
        # Well below the corner the band is flat.
        assert passband_ripple_db(freqs, mag, 1e5)[0] < 0.01

    def test_ripple_catches_corner_droop(self):
        freqs = log_frequencies(1e3, 1e8, 20)
        mag = self.butterworth2(1e6, freqs)
        # -3 dB right at the passband edge counts as 3 dB "ripple".
        assert passband_ripple_db(freqs, mag, 1e6)[0] == pytest.approx(
            3.0, abs=0.2)

    def test_stopband_attenuation_40db_per_decade(self):
        freqs = log_frequencies(1e3, 1e9, 20)
        mag = self.butterworth2(1e6, freqs)
        atten = stopband_attenuation_db(freqs, mag, 1e7)[0]
        assert atten == pytest.approx(40.0, abs=1.0)

    def test_stopband_beyond_sweep_nan(self):
        freqs = log_frequencies(1e3, 1e6, 10)
        mag = self.butterworth2(1e6, freqs)
        assert np.isnan(stopband_attenuation_db(freqs, mag, 1e8)[0])

    def test_peaking_counts_as_ripple(self):
        freqs = log_frequencies(1e3, 1e8, 20)
        s = 1j * freqs / 1e6
        h = 1.0 / (s * s + 0.4 * s + 1)  # Q = 2.5: strong peaking
        mag = 20 * np.log10(np.abs(h))[None, :]
        ripple = passband_ripple_db(freqs, mag, 1e6)[0]
        assert ripple > 6.0
