"""Tests for the Miller OTA (second topology) and the hypervolume metric."""

import numpy as np
import pytest

from repro.designs.miller import (MILLER_DESIGN_SPACE, MillerOTAProblem,
                                  MillerParameters, build_miller_ota,
                                  evaluate_miller_ota)
from repro.errors import OptimizationError, ReproError
from repro.moo import GAConfig, run_wbga
from repro.moo.hypervolume import hypervolume_2d
from repro.process import C35


class TestMillerParameters:
    def test_normalised_mapping(self):
        low = MillerParameters.from_normalized(np.zeros(6))
        high = MillerParameters.from_normalized(np.ones(6))
        assert low.w1 == pytest.approx(MILLER_DESIGN_SPACE["w1"][0])
        assert high.l3 == pytest.approx(MILLER_DESIGN_SPACE["l3"][1])

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            MillerParameters.from_normalized(np.zeros(5))

    def test_to_array_batched(self):
        params = MillerParameters(w1=np.array([1e-5, 2e-5]))
        assert params.to_array().shape == (2, 6)


class TestMillerCircuit:
    def test_two_stage_gain_higher_than_symmetrical(self):
        perf = evaluate_miller_ota(MillerParameters())
        # Two gain stages: well above the symmetrical OTA's ~50 dB.
        assert perf["gain_db"][0] > 60.0
        assert 20.0 < perf["pm_deg"][0] < 90.0

    def test_devices_biased(self):
        from repro.analysis import dc_operating_point
        circuit = build_miller_ota(MillerParameters())
        op = dc_operating_point(circuit)
        assert 0.3 < op.v("out")[0] < 3.0
        assert op.device("M6")["ids"][0] > 1e-6

    def test_length_raises_gain(self):
        lengths = np.array([0.5e-6, 1e-6, 2e-6])
        perf = evaluate_miller_ota(MillerParameters(
            l1=lengths, l2=lengths, l3=lengths))
        assert np.all(np.diff(perf["gain_db"]) > 0)

    def test_variations_supported(self):
        rng = np.random.default_rng(1)
        sample = C35.sample(4, rng)
        params = MillerParameters.from_normalized(
            np.broadcast_to(np.full(6, 0.5), (4, 6)).copy())
        perf = evaluate_miller_ota(params, variations=sample)
        assert perf["gain_db"].shape == (4,)
        assert np.std(perf["gain_db"]) > 0

    def test_problem_with_wbga(self):
        problem = MillerOTAProblem()
        result = run_wbga(problem, GAConfig(population_size=12,
                                            generations=5, seed=3))
        assert result.evaluations == 60
        front = result.pareto_objectives()
        assert front.shape[0] >= 1
        assert np.all(np.isfinite(front[:, 0]))


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([[1.0, 1.0]], (0.0, 0.0)) == 1.0

    def test_staircase(self):
        assert hypervolume_2d([[1.0, 2.0], [2.0, 1.0]],
                              (0.0, 0.0)) == pytest.approx(3.0)

    def test_dominated_points_ignored(self):
        with_dominated = hypervolume_2d(
            [[1.0, 2.0], [2.0, 1.0], [0.5, 0.5]], (0.0, 0.0))
        assert with_dominated == pytest.approx(3.0)

    def test_points_below_reference_ignored(self):
        assert hypervolume_2d([[1.0, 1.0], [-1.0, 5.0]],
                              (0.0, 0.0)) == pytest.approx(1.0)

    def test_empty_set(self):
        assert hypervolume_2d(np.empty((0, 2)), (0.0, 0.0)) == 0.0
        assert hypervolume_2d([[np.nan, 1.0]], (0.0, 0.0)) == 0.0

    def test_shape_validation(self):
        with pytest.raises(OptimizationError):
            hypervolume_2d([[1.0, 2.0, 3.0]], (0.0, 0.0))

    def test_monotone_in_front_quality(self):
        weak = hypervolume_2d([[1.0, 1.0]], (0.0, 0.0))
        strong = hypervolume_2d([[1.5, 1.5]], (0.0, 0.0))
        assert strong > weak

    def test_duplicates_no_double_count(self):
        assert hypervolume_2d([[1.0, 1.0], [1.0, 1.0]],
                              (0.0, 0.0)) == pytest.approx(1.0)

    def test_reference_offset(self):
        assert hypervolume_2d([[2.0, 3.0]], (1.0, 1.0)) == pytest.approx(2.0)


class TestSweepUtilities:
    """Coverage for analysis.sweep (dc_sweep, with_element_values)."""

    def test_dc_sweep_of_divider(self):
        from repro.analysis import dc_sweep
        from repro.circuit import Circuit, Resistor, VoltageSource
        c = Circuit("div")
        c.add(VoltageSource("V1", "in", "0", 1.0))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Resistor("R2", "out", "0", 1e3))
        op = dc_sweep(c, "V1", [1.0, 2.0, 4.0])
        np.testing.assert_allclose(op.v("out"), [0.5, 1.0, 2.0])
        # Original value restored.
        assert c.element("V1").dc == 1.0

    def test_with_element_values_restores_on_exception(self):
        from repro.analysis import with_element_values
        from repro.circuit import Circuit, Resistor, VoltageSource
        c = Circuit("t")
        c.add(VoltageSource("V1", "a", "0", 1.0))
        c.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(RuntimeError):
            with with_element_values(c, {("R1", "resistance"): 2e3}):
                assert c.element("R1").resistance == 2e3
                raise RuntimeError("boom")
        assert c.element("R1").resistance == 1e3

    def test_mosfet_transfer_sweep(self):
        from repro.analysis import dc_sweep
        from repro.circuit import Circuit, Mosfet, Resistor, VoltageSource
        c = Circuit("cs")
        c.add(VoltageSource("VDD", "vdd", "0", 3.3))
        c.add(VoltageSource("VG", "g", "0", 0.9))
        c.add(Resistor("RD", "vdd", "d", 1e4))
        c.add(Mosfet("M1", "d", "g", "0", "0", C35.nmos, 10e-6, 1e-6))
        gate_voltages = np.linspace(0.3, 1.5, 7)
        op = dc_sweep(c, "VG", gate_voltages)
        drain = op.v("d")
        # Monotone falling transfer characteristic.
        assert np.all(np.diff(drain) < 1e-9)
        assert drain[0] > 3.2      # device off
        assert drain[-1] < 1.0     # device strongly on
