"""Optimiser tests: GA operators, the paper's WBGA, NSGA-II."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import OptimizationError
from repro.moo import (FunctionProblem, GAConfig, Objective, normalise_weights,
                       run_nsga2, run_wbga)
from repro.moo.ga import (blend_crossover, gaussian_mutation,
                          polynomial_mutation, reflect_into_bounds,
                          sbx_crossover, tournament_select, uniform_crossover)
from repro.moo.wbga import _equation5_fitness


def make_problem(fn, n_params, objectives):
    names = [f"p{i}" for i in range(n_params)]
    return FunctionProblem(fn, names, objectives)


def schaffer(u):
    """Schaffer's two-objective problem on [0,1] mapped to x in [-2, 4]:
    f1 = -x^2 (max), f2 = -(x-2)^2 (max); the true Pareto set is
    x in [0, 2]."""
    x = -2.0 + 6.0 * u[:, 0]
    return np.stack([-x ** 2, -(x - 2.0) ** 2], axis=1)


SCHAFFER_OBJECTIVES = (Objective("f1"), Objective("f2"))


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            GAConfig(population_size=1)
        with pytest.raises(OptimizationError):
            GAConfig(crossover_rate=1.5)
        with pytest.raises(OptimizationError):
            GAConfig(mutation_rate=-0.1)
        with pytest.raises(OptimizationError):
            GAConfig(population_size=4, elite_count=4)


class TestOperators:
    def test_tournament_prefers_fit(self):
        rng = np.random.default_rng(0)
        fitness = np.array([0.0, 10.0, 0.0, 0.0])
        winners = tournament_select(fitness, 500, 2, rng)
        # With 4 entrants, P(best appears in a 2-tournament) = 1-(3/4)^2
        # = 0.4375 -- well above the uniform 0.25.
        assert np.mean(winners == 1) > 0.35

    def test_tournament_nan_always_loses(self):
        rng = np.random.default_rng(0)
        fitness = np.array([np.nan, 1.0])
        winners = tournament_select(fitness, 100, 2, rng)
        # NaN only wins tournaments where it faces itself.
        a_vs_b = winners[np.isin(winners, [0, 1])]
        assert np.mean(a_vs_b == 1) > 0.6

    @given(st.lists(st.floats(-3, 4), min_size=1, max_size=20))
    def test_reflect_into_bounds(self, raw):
        reflected = reflect_into_bounds(np.asarray(raw))
        assert np.all(reflected >= 0.0) and np.all(reflected <= 1.0)

    def test_reflection_preserves_interior(self):
        genes = np.array([0.25, 0.5, 0.99])
        np.testing.assert_allclose(reflect_into_bounds(genes), genes)

    def test_uniform_crossover_takes_genes_from_parents(self):
        rng = np.random.default_rng(1)
        a = np.zeros((64, 6))
        b = np.ones((64, 6))
        children = uniform_crossover(a, b, 1.0, rng)
        assert set(np.unique(children)) <= {0.0, 1.0}
        assert 0.3 < children.mean() < 0.7

    def test_crossover_rate_zero_copies_parent_a(self):
        rng = np.random.default_rng(1)
        a = np.zeros((8, 3))
        b = np.ones((8, 3))
        children = uniform_crossover(a, b, 0.0, rng)
        np.testing.assert_array_equal(children, a)

    def test_blend_crossover_in_bounds(self):
        rng = np.random.default_rng(2)
        a = rng.random((32, 4))
        b = rng.random((32, 4))
        children = blend_crossover(a, b, 1.0, rng)
        assert np.all(children >= 0) and np.all(children <= 1)

    def test_sbx_children_in_bounds_and_symmetric(self):
        rng = np.random.default_rng(3)
        a = rng.random((64, 5))
        b = rng.random((64, 5))
        c1, c2 = sbx_crossover(a, b, 1.0, rng)
        for c in (c1, c2):
            assert np.all(c >= 0) and np.all(c <= 1)
        # SBX preserves the pair mean where no clipping occurred.
        interior = ((c1 > 0) & (c1 < 1) & (c2 > 0) & (c2 < 1))
        np.testing.assert_allclose((c1 + c2)[interior],
                                   (a + b)[interior], atol=1e-9)

    @given(st.floats(0.0, 1.0))
    def test_gaussian_mutation_bounds(self, rate):
        rng = np.random.default_rng(4)
        genes = rng.random((16, 4))
        mutated = gaussian_mutation(genes, rate, 0.3, rng)
        assert np.all(mutated >= 0) and np.all(mutated <= 1)

    def test_polynomial_mutation_bounds(self):
        rng = np.random.default_rng(5)
        genes = rng.random((16, 4))
        mutated = polynomial_mutation(genes, 1.0, rng)
        assert np.all(mutated >= 0) and np.all(mutated <= 1)


class TestWeightNormalisation:
    def test_equation4(self):
        weights = normalise_weights(np.array([[2.0, 6.0]]))
        np.testing.assert_allclose(weights, [[0.25, 0.75]])

    def test_zero_vector_falls_back_to_equal(self):
        weights = normalise_weights(np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(weights, [[1 / 3, 1 / 3, 1 / 3]])

    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=6))
    def test_sums_to_one(self, raw):
        weights = normalise_weights(np.asarray([raw]))
        assert weights.sum() == pytest.approx(1.0)


class TestEquation5:
    def test_known_normalisation(self):
        oriented = np.array([[5.0, 10.0], [10.0, 20.0]])
        weights = np.array([[0.5, 0.5], [0.5, 0.5]])
        f_min = np.array([0.0, 0.0])
        f_max = np.array([10.0, 20.0])
        fitness = _equation5_fitness(oriented, weights, f_min, f_max)
        np.testing.assert_allclose(fitness, [0.5, 1.0])

    def test_degenerate_span(self):
        oriented = np.array([[5.0, 7.0]])
        weights = np.array([[1.0, 0.0]])
        fitness = _equation5_fitness(oriented, weights,
                                     np.array([5.0, 0.0]),
                                     np.array([5.0, 10.0]))
        assert fitness[0] == pytest.approx(0.5)  # constant objective -> 0.5


class TestWBGA:
    def test_single_objective_converges(self):
        def sphere(u):
            return -np.sum((u - 0.7) ** 2, axis=1, keepdims=True)

        problem = make_problem(sphere, 3, (Objective("f"),))
        result = run_wbga(problem, GAConfig(population_size=30,
                                            generations=40, seed=1))
        # Fitness is normalised per-generation, so locate the best by the
        # raw objective value.
        best = result.all_parameters[np.argmax(result.all_objectives[:, 0])]
        np.testing.assert_allclose(best, 0.7, atol=0.08)

    def test_archive_size_and_counters(self):
        problem = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        config = GAConfig(population_size=20, generations=10, seed=2)
        result = run_wbga(problem, config)
        assert result.evaluations == 200
        assert problem.evaluation_count == 200
        assert result.all_weights.shape == (200, 2)
        assert result.generation_of.max() == 9

    def test_schaffer_front_coverage(self):
        problem = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        result = run_wbga(problem, GAConfig(population_size=40,
                                            generations=30, seed=3))
        front = result.pareto_objectives()
        # The front satisfies sqrt(-f1) + sqrt(-f2) = 2.
        residual = np.sqrt(-front[:, 0]) + np.sqrt(-front[:, 1]) - 2.0
        # Finite sampling leaves stragglers near the front's ends; the
        # bulk must sit on the analytic front.
        assert np.median(np.abs(residual)) < 0.02
        assert np.max(np.abs(residual)) < 0.5
        assert result.pareto_count() > 10

    def test_reproducible(self):
        problem_a = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        problem_b = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        config = GAConfig(population_size=10, generations=5, seed=42)
        a = run_wbga(problem_a, config)
        b = run_wbga(problem_b, config)
        np.testing.assert_array_equal(a.all_parameters, b.all_parameters)

    def test_minimize_orientation(self):
        def fn(u):
            return np.stack([u[:, 0], (u[:, 0] - 1) ** 2], axis=1)

        problem = make_problem(
            fn, 1, (Objective("cost", "minimize"), Objective("err", "minimize")))
        result = run_wbga(problem, GAConfig(population_size=20,
                                            generations=15, seed=4))
        front = result.pareto_objectives()
        # Minimising both: small cost trades against small error.
        assert front[:, 0].min() < 0.1

    def test_nan_objectives_survive(self):
        def fn(u):
            values = np.stack([u[:, 0], 1 - u[:, 0]], axis=1)
            values[u[:, 0] > 0.9] = np.nan  # a "failed simulation" region
            return values

        problem = make_problem(fn, 1, SCHAFFER_OBJECTIVES)
        result = run_wbga(problem, GAConfig(population_size=16,
                                            generations=10, seed=5))
        assert result.pareto_count() >= 1
        assert not np.any(np.isnan(result.pareto_objectives()))

    def test_progress_callback(self):
        problem = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        seen = []
        run_wbga(problem, GAConfig(population_size=10, generations=4, seed=6),
                 progress=lambda gen, best: seen.append(gen))
        assert seen == [0, 1, 2, 3]


class TestNSGA2:
    def test_schaffer_front(self):
        problem = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        result = run_nsga2(problem, GAConfig(population_size=24,
                                             generations=25, seed=7))
        front = result.final_objectives
        residual = np.sqrt(-front[:, 0]) + np.sqrt(-front[:, 1]) - 2.0
        assert np.median(np.abs(residual)) < 0.05

    def test_final_population_size(self):
        problem = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        config = GAConfig(population_size=16, generations=8, seed=8)
        result = run_nsga2(problem, config)
        assert result.final_parameters.shape == (16, 1)
        assert result.evaluations == 16 * 8

    def test_elitist_front_never_regresses(self):
        # NSGA-II environmental selection keeps non-dominated parents; the
        # final front must weakly dominate the first generation's best.
        problem = make_problem(schaffer, 1, SCHAFFER_OBJECTIVES)
        result = run_nsga2(problem, GAConfig(population_size=20,
                                             generations=20, seed=9))
        first_gen = result.all_objectives[:20]
        final = result.final_objectives
        assert final[:, 0].max() >= first_gen[:, 0].max() - 1e-9
        assert final[:, 1].max() >= first_gen[:, 1].max() - 1e-9
