"""MOSFET model physics tests: regions, derivatives, symmetry, caps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.mosfet import Mosfet, MOSModel
from repro.errors import NetlistError

NMOS = MOSModel("nmos", "n", vto=0.5, kp=170e-6)
PMOS = MOSModel("pmos", "p", vto=-0.65, kp=58e-6)


def make_nmos(w=10e-6, l=1e-6, **kw):
    return Mosfet("M1", "d", "g", "s", "b", NMOS, w, l, **kw)


def make_pmos(w=10e-6, l=1e-6, **kw):
    return Mosfet("M1", "d", "g", "s", "b", PMOS, w, l, **kw)


class TestModelCard:
    def test_polarity_validation(self):
        with pytest.raises(NetlistError):
            MOSModel("bad", "x")

    def test_positive_kp_required(self):
        with pytest.raises(NetlistError):
            MOSModel("bad", "n", kp=-1.0)

    def test_with_variation_nmos(self):
        varied = NMOS.with_variation(dvto=0.03, kp_scale=1.1)
        assert varied.vto == pytest.approx(0.53)
        assert varied.kp == pytest.approx(170e-6 * 1.1)

    def test_with_variation_pmos_sign(self):
        # Positive dvto means "slower" -> |VT| grows -> more negative.
        varied = PMOS.with_variation(dvto=0.03)
        assert varied.vto == pytest.approx(-0.68)


class TestGeometry:
    def test_leff(self):
        m = make_nmos(l=1e-6)
        assert m.leff == pytest.approx(1e-6 - 2 * NMOS.ld)

    def test_too_short_channel_rejected(self):
        with pytest.raises(NetlistError, match="length"):
            make_nmos(l=0.05e-6)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(NetlistError, match="width"):
            make_nmos(w=0.0)

    def test_beta_scales_with_geometry(self):
        narrow = make_nmos(w=10e-6)
        wide = make_nmos(w=20e-6)
        assert wide.beta == pytest.approx(2 * narrow.beta)

    def test_lambda_falls_with_length(self):
        short = make_nmos(l=0.5e-6)
        long = make_nmos(l=4e-6)
        assert short.lam > long.lam

    def test_engineering_strings(self):
        m = Mosfet("M1", "d", "g", "s", "b", NMOS, "10u", "1u")
        assert np.asarray(m.w) == pytest.approx(1e-5)


class TestOperatingRegions:
    def test_off_below_threshold(self):
        op = make_nmos().evaluate(vgs=0.0, vds=1.0, vbs=0.0)
        assert abs(op.ids) < 1e-9  # only subthreshold leakage

    def test_saturation_current_square_law(self):
        m = make_nmos(l=4e-6)  # long channel: weak CLM
        vov = 0.5
        op = m.evaluate(vgs=NMOS.vto + vov, vds=2.0, vbs=0.0)
        expected = 0.5 * float(m.beta) * vov ** 2 * (1 + float(m.lam) * 2.0)
        assert float(op.ids) == pytest.approx(expected, rel=0.05)

    def test_triode_region(self):
        m = make_nmos(l=4e-6)
        vov, vds = 0.8, 0.1
        op = m.evaluate(vgs=NMOS.vto + vov, vds=vds, vbs=0.0)
        expected = float(m.beta) * (vov - vds / 2) * vds
        assert float(op.ids) == pytest.approx(expected, rel=0.05)

    def test_current_increases_with_vgs(self):
        m = make_nmos()
        currents = [float(m.evaluate(v, 1.5, 0.0).ids)
                    for v in (0.7, 0.9, 1.1, 1.3)]
        assert np.all(np.diff(currents) > 0)

    def test_current_increases_with_vds(self):
        m = make_nmos()
        currents = [float(m.evaluate(1.0, v, 0.0).ids)
                    for v in (0.1, 0.3, 0.6, 1.0, 2.0)]
        assert np.all(np.diff(currents) > 0)  # CLM keeps slope positive

    def test_body_effect_raises_threshold(self):
        m = make_nmos()
        i_no_bias = float(m.evaluate(0.9, 1.0, 0.0).ids)
        i_back_bias = float(m.evaluate(0.9, 1.0, -1.0).ids)
        assert i_back_bias < i_no_bias

    def test_pmos_mirror_symmetry(self):
        pmos_model = MOSModel("p", "p", vto=-0.5, kp=170e-6, gamma=0.58)
        n = make_nmos()
        p = Mosfet("M1", "d", "g", "s", "b", pmos_model, 10e-6, 1e-6)
        op_n = n.evaluate(1.0, 1.5, 0.0)
        op_p = p.evaluate(-1.0, -1.5, 0.0)
        assert float(op_p.ids) == pytest.approx(-float(op_n.ids), rel=1e-12)
        assert float(op_p.gm) == pytest.approx(float(op_n.gm), rel=1e-12)
        assert float(op_p.gds) == pytest.approx(float(op_n.gds), rel=1e-12)

    def test_reverse_mode_antisymmetry(self):
        # Swapping drain and source must negate the current (vbs=0 so the
        # body terminal is symmetric too).
        m = make_nmos()
        fwd = float(m.evaluate(vgs=1.2, vds=0.4, vbs=0.0).ids)
        # Reverse: gate-to-(new)source = vgs - vds, vds negated.
        rev = float(m.evaluate(vgs=1.2 - 0.4, vds=-0.4, vbs=-0.4).ids)
        assert rev == pytest.approx(-fwd, rel=1e-9)


class TestDerivatives:
    """Analytic small-signal parameters must match finite differences."""

    @staticmethod
    def _fd(m, vgs, vds, vbs, which, h=1e-7):
        def ids(g, d, b):
            return float(m.evaluate(g, d, b).ids)
        if which == "gm":
            return (ids(vgs + h, vds, vbs) - ids(vgs - h, vds, vbs)) / (2 * h)
        if which == "gds":
            return (ids(vgs, vds + h, vbs) - ids(vgs, vds - h, vbs)) / (2 * h)
        return (ids(vgs, vds, vbs + h) - ids(vgs, vds, vbs - h)) / (2 * h)

    @settings(max_examples=60, deadline=None)
    @given(vgs=st.floats(0.2, 2.5), vds=st.floats(0.01, 3.0),
           vbs=st.floats(-2.0, 0.0))
    def test_gm_gds_gmb_match_fd_forward(self, vgs, vds, vbs):
        m = make_nmos()
        op = m.evaluate(vgs, vds, vbs)
        assert float(op.gm) == pytest.approx(
            self._fd(m, vgs, vds, vbs, "gm"), rel=1e-4, abs=1e-12)
        assert float(op.gds) == pytest.approx(
            self._fd(m, vgs, vds, vbs, "gds") + m.GDS_MIN, rel=1e-4, abs=1e-11)
        assert float(op.gmb) == pytest.approx(
            self._fd(m, vgs, vds, vbs, "gmb"), rel=1e-4, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(vgs=st.floats(0.6, 2.0), vds=st.floats(-2.0, -0.05))
    def test_derivatives_match_fd_reverse(self, vgs, vds):
        m = make_nmos()
        op = m.evaluate(vgs, vds, 0.0)
        # In reverse mode vbs FD would need vbd handling; test gm/gds only.
        assert float(op.gm) == pytest.approx(
            self._fd(m, vgs, vds, 0.0, "gm"), rel=1e-3, abs=1e-10)
        assert float(op.gds) == pytest.approx(
            self._fd(m, vgs, vds, 0.0, "gds") + m.GDS_MIN,
            rel=1e-3, abs=1e-10)

    def test_gmb_positive_in_forward_saturation(self):
        op = make_nmos().evaluate(1.0, 1.5, -0.5)
        assert float(op.gmb) > 0

    def test_intrinsic_gain_grows_with_length(self):
        gains = []
        for l in (0.5e-6, 1e-6, 2e-6, 4e-6):
            m = make_nmos(l=l)
            op = m.evaluate(0.8, 1.5, 0.0)
            gains.append(float(op.gm / op.gds))
        assert np.all(np.diff(gains) > 0)


class TestStatisticalHooks:
    def test_delta_vto_reduces_current(self):
        base = float(make_nmos().evaluate(1.0, 1.5, 0.0).ids)
        shifted = float(make_nmos(delta_vto=0.05).evaluate(1.0, 1.5, 0.0).ids)
        assert shifted < base

    def test_beta_scale(self):
        base = float(make_nmos().evaluate(1.0, 1.5, 0.0).ids)
        scaled = float(make_nmos(beta_scale=1.1).evaluate(1.0, 1.5, 0.0).ids)
        assert scaled == pytest.approx(1.1 * base, rel=1e-9)

    def test_batched_variation(self):
        m = make_nmos(delta_vto=np.array([0.0, 0.02, 0.05]))
        op = m.evaluate(1.0, 1.5, 0.0)
        assert op.ids.shape == (3,)
        assert np.all(np.diff(op.ids) < 0)


class TestCapacitances:
    def test_all_positive_in_saturation(self):
        caps = make_nmos().capacitances(1.0, 1.5, 0.0)
        for name, value in caps.items():
            assert float(value) > 0, name

    def test_meyer_limits(self):
        m = make_nmos()
        cox_total = NMOS.cox * 10e-6 * float(m.leff)
        sat = m.capacitances(1.5, 2.0, 0.0)
        # Deep saturation: Cgs -> 2/3 Cox + overlap, Cgd -> overlap only.
        overlap = NMOS.cgso * 10e-6
        assert float(sat["cgs"]) == pytest.approx(
            (2 / 3) * cox_total + overlap, rel=0.05)
        assert float(sat["cgd"]) == pytest.approx(NMOS.cgdo * 10e-6, rel=0.05)
        # vds = 0: Cgs = Cgd = Cox/2 + overlap.
        triode = m.capacitances(1.5, 0.0, 0.0)
        assert float(triode["cgs"]) == pytest.approx(
            0.5 * cox_total + overlap, rel=0.05)
        assert float(triode["cgs"]) == pytest.approx(float(triode["cgd"]),
                                                     rel=0.05)

    def test_junction_caps_fall_with_reverse_bias(self):
        m = make_nmos()
        weak = m.capacitances(1.0, 0.5, 0.0)
        strong = m.capacitances(1.0, 3.0, 0.0)
        assert float(strong["cdb"]) < float(weak["cdb"])

    def test_off_device_gate_cap_goes_to_bulk(self):
        m = make_nmos()
        off = m.capacitances(0.0, 1.0, 0.0)
        on = m.capacitances(1.5, 1.0, 0.0)
        assert float(off["cgb"]) > float(on["cgb"])


class TestOpInfo:
    def test_report_keys(self):
        from repro.analysis import dc_operating_point
        from repro.circuit import Circuit, Resistor, VoltageSource
        c = Circuit("t")
        c.add(VoltageSource("VDD", "vdd", "0", 3.3))
        c.add(VoltageSource("VG", "g", "0", 1.0))
        c.add(Resistor("RD", "vdd", "d", 1e4))
        c.add(Mosfet("M1", "d", "g", "0", "0", NMOS, 10e-6, 1e-6))
        op = dc_operating_point(c)
        info = op.device("M1")
        for key in ("ids", "gm", "gds", "vgs", "vds", "vth", "vov",
                    "saturated", "intrinsic_gain"):
            assert key in info
        assert bool(info["saturated"][0])
