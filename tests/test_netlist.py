"""Tests for the circuit container and compilation."""

import numpy as np
import pytest

from repro.circuit import (Capacitor, Circuit, Inductor, Resistor,
                           VoltageSource, is_ground)
from repro.errors import NetlistError


def divider() -> Circuit:
    c = Circuit("divider")
    c.add(VoltageSource("V1", "in", "0", 1.0))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Resistor("R2", "out", "0", 1e3))
    return c


class TestGround:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "Gnd"])
    def test_ground_aliases(self, name):
        assert is_ground(name)

    @pytest.mark.parametrize("name", ["vss", "out", "00", "ground"])
    def test_non_ground(self, name):
        assert not is_ground(name)

    def test_groundless_circuit_rejected(self):
        c = Circuit("floating")
        c.add(Resistor("R1", "a", "b", 1.0))
        with pytest.raises(NetlistError, match="ground"):
            c.compile()


class TestCircuitContainer:
    def test_add_and_lookup(self):
        c = divider()
        assert len(c) == 3
        assert "R1" in c
        assert c.element("R1").resistance == 1e3

    def test_duplicate_name_rejected(self):
        c = divider()
        with pytest.raises(NetlistError, match="duplicate"):
            c.add(Resistor("R1", "x", "0", 1.0))

    def test_remove(self):
        c = divider()
        removed = c.remove("R2")
        assert removed.name == "R2"
        assert "R2" not in c
        with pytest.raises(NetlistError):
            c.remove("R2")

    def test_unknown_element(self):
        with pytest.raises(NetlistError, match="no element"):
            divider().element("R99")

    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError, match="empty"):
            Circuit("empty").compile()

    def test_iteration_preserves_order(self):
        c = divider()
        assert [e.name for e in c] == ["V1", "R1", "R2"]

    def test_summary_mentions_elements(self):
        text = divider().summary()
        for name in ("V1", "R1", "R2"):
            assert name in text


class TestCompilation:
    def test_node_indexing(self):
        topo = divider().compile()
        assert topo.n_nodes == 2
        assert set(topo.node_names) == {"in", "out"}
        assert topo.index_of("0") == -1
        assert topo.index_of("gnd") == -1

    def test_unknown_node(self):
        topo = divider().compile()
        with pytest.raises(NetlistError, match="unknown node"):
            topo.index_of("nowhere")

    def test_aux_rows_assigned(self):
        c = divider()
        c.add(Inductor("L1", "out", "mid", 1e-3))
        topo = c.compile()
        # 3 nodes (in, out, mid) + 1 source branch + 1 inductor branch.
        assert topo.n_unknowns == 5

    def test_compilation_cached_and_invalidated(self):
        c = divider()
        first = c.compile()
        assert c.compile() is first
        c.add(Resistor("R3", "out", "extra", 1.0))
        assert c.compile() is not first

    def test_nodes_property(self):
        assert divider().nodes == ("in", "out")


class TestBatching:
    def test_scalar_circuit_batch_one(self):
        assert divider().batch == 1

    def test_batched_element_sets_circuit_batch(self):
        c = divider()
        c.element("R2").resistance = np.array([1e3, 2e3, 3e3])
        c.invalidate()
        assert c.batch == 3

    def test_inconsistent_batches_rejected(self):
        c = divider()
        c.element("R1").resistance = np.array([1e3, 2e3])
        c.element("R2").resistance = np.array([1e3, 2e3, 3e3])
        c.invalidate()
        with pytest.raises(NetlistError, match="batch"):
            c.compile()

    def test_2d_parameters_rejected(self):
        c = divider()
        c.element("R1").resistance = np.ones((2, 2))
        c.invalidate()
        with pytest.raises(NetlistError, match="1-D"):
            c.compile()


class TestElementValidation:
    def test_positive_resistance_required(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", -1.0)
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", 0.0)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(NetlistError):
            Capacitor("C1", "a", "b", -1e-12)

    def test_engineering_strings_accepted(self):
        assert Resistor("R1", "a", "b", "2.2k").resistance == 2200.0
        assert Capacitor("C1", "a", "b", "10p").capacitance == 10e-12

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)
