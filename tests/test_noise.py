"""Noise analysis tests against closed-form results."""

import numpy as np
import pytest

from repro.analysis import log_frequencies, noise_analysis
from repro.analysis.noise import BOLTZMANN, TEMPERATURE
from repro.circuit import (Capacitor, Circuit, Diode, Mosfet, Resistor,
                           VoltageSource)
from repro.errors import AnalysisError
from repro.process import C35

FOUR_KT = 4.0 * BOLTZMANN * TEMPERATURE


def rc_circuit(r=1e3, c=1e-9):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("V1", "in", "0", 0.0))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt


class TestResistorNoise:
    def test_flat_band_psd_is_4ktr(self):
        res = noise_analysis(rc_circuit(), [1.0], output_node="out")
        assert res.output_psd[0, 0] == pytest.approx(FOUR_KT * 1e3, rel=1e-6)

    def test_integrated_ktc(self):
        """The classic: total output noise of an RC filter is kT/C,
        independent of R."""
        for r in (1e2, 1e4):
            c = 1e-9
            freqs = log_frequencies(1e-1, 1e11, 40)
            res = noise_analysis(rc_circuit(r=r, c=c), freqs,
                                 output_node="out")
            rms = res.integrated_output_rms()[0]
            expected = np.sqrt(BOLTZMANN * TEMPERATURE / c)
            assert rms == pytest.approx(expected, rel=2e-3), f"R={r}"

    def test_divider_noise_is_parallel_resistance(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("V1", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "out", 2e3))
        ckt.add(Resistor("R2", "out", "0", 2e3))
        res = noise_analysis(ckt, [1e3], output_node="out")
        assert res.output_psd[0, 0] == pytest.approx(FOUR_KT * 1e3, rel=1e-6)

    def test_contributions_sum_to_total(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("V1", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Resistor("R2", "out", "0", 3e3))
        res = noise_analysis(ckt, [1e3, 1e6], output_node="out")
        total = sum(res.contributions.values())
        np.testing.assert_allclose(total, res.output_psd, rtol=1e-12)


class TestInputReferral:
    def test_unity_gain_input_referred_equals_output(self):
        # Output taken directly at the source node through a tiny R.
        ckt = Circuit("t")
        ckt.add(VoltageSource("V1", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "out", 1.0))
        ckt.add(Resistor("R2", "out", "0", 1e9))
        res = noise_analysis(ckt, [1e3], output_node="out",
                             input_source="V1")
        assert res.gain[0, 0] == pytest.approx(1.0, rel=1e-6)
        np.testing.assert_allclose(res.input_referred_psd, res.output_psd,
                                   rtol=1e-6)

    def test_no_input_source_raises_on_referral(self):
        res = noise_analysis(rc_circuit(), [1.0], output_node="out")
        with pytest.raises(AnalysisError):
            _ = res.input_referred_psd


class TestDeviceNoise:
    def cs_amp(self):
        ckt = Circuit("cs")
        ckt.add(VoltageSource("VDD", "vdd", "0", 3.3))
        ckt.add(VoltageSource("VG", "g", "0", 0.9, ac_mag=1.0))
        ckt.add(Resistor("RD", "vdd", "d", 1e4))
        ckt.add(Mosfet("M1", "d", "g", "0", "0", C35.nmos, 20e-6, 1e-6))
        return ckt

    def test_mosfet_thermal_noise_present(self):
        res = noise_analysis(self.cs_amp(), [1e6], output_node="d")
        assert "M1:thermal" in res.contributions
        assert res.contributions["M1:thermal"][0, 0] > 0

    def test_flicker_dominates_low_frequency(self):
        res = noise_analysis(self.cs_amp(), [1.0, 1e8], output_node="d")
        flicker = res.contributions["M1:flicker"][0]
        thermal = res.contributions["M1:thermal"][0]
        assert flicker[0] > thermal[0]     # 1 Hz: 1/f wins
        assert flicker[1] < thermal[1]     # 100 MHz: thermal wins

    def test_flicker_slope_is_one_over_f(self):
        res = noise_analysis(self.cs_amp(), [10.0, 100.0], output_node="d")
        flicker = res.contributions["M1:flicker"][0]
        assert flicker[0] / flicker[1] == pytest.approx(10.0, rel=0.05)

    def test_input_referred_of_amplifier(self):
        res = noise_analysis(self.cs_amp(), [1e6], output_node="d",
                             input_source="VG")
        # Input-referred thermal floor ~ 4kT*gamma/gm: order nV/rtHz.
        vn = np.sqrt(res.input_referred_psd[0, 0])
        assert 1e-10 < vn < 1e-7

    def test_diode_shot_noise(self):
        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", "in", "0", 3.0))
        ckt.add(Resistor("R1", "in", "a", 1e4))
        ckt.add(Diode("D1", "a", "0"))
        res = noise_analysis(ckt, [1e3], output_node="a")
        assert "D1:shot" in res.contributions
        assert res.contributions["D1:shot"][0, 0] > 0

    def test_dominant_contributor(self):
        res = noise_analysis(self.cs_amp(), [1.0], output_node="d")
        assert res.dominant_contributor(0) == "M1:flicker"


class TestValidationAndBatch:
    def test_noiseless_circuit_rejected(self):
        ckt = Circuit("quiet")
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        ckt.add(Capacitor("C1", "a", "0", 1e-9))
        with pytest.raises(AnalysisError, match="no noisy"):
            noise_analysis(ckt, [1.0], output_node="a")

    def test_ground_output_rejected(self):
        with pytest.raises(AnalysisError, match="ground"):
            noise_analysis(rc_circuit(), [1.0], output_node="0")

    def test_batched_circuit(self):
        ckt = rc_circuit(c=np.array([1e-9, 2e-9]))
        freqs = log_frequencies(1e-1, 1e11, 30)
        res = noise_analysis(ckt, freqs, output_node="out")
        rms = res.integrated_output_rms()
        expected = np.sqrt(BOLTZMANN * TEMPERATURE / np.array([1e-9, 2e-9]))
        np.testing.assert_allclose(rms, expected, rtol=5e-3)

    def test_integration_band_validation(self):
        res = noise_analysis(rc_circuit(), [1.0, 10.0], output_node="out")
        with pytest.raises(AnalysisError):
            res.integrated_output_rms(f_start=100.0)
