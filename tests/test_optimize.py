"""In-loop yield optimisation tests (repro.optimize).

The circuit is replaced by a synthetic linear performance over the
sigma-unit global process space, so every candidate's true yield is the
closed-form ``Phi(offset / ||coefficients||)`` -- the ladder's accuracy,
escalation logic, budget handling, and backend invariance can all be
checked against analytic truth at trivial cost.
"""

import math

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.measure import Spec, SpecSet
from repro.moo.problem import FunctionProblem, Objective
from repro.optimize import (EstimatorLadder, LadderConfig,
                            YieldAugmentedProblem, YieldSearchConfig,
                            format_guardband_comparison,
                            format_ladder_summary, format_yield_front,
                            run_yield_search)
from repro.process import C35

COEFS = np.array([1.0, 0.5, -0.8, 0.3, 0.2])
NORM = float(np.linalg.norm(COEFS))

SPECS = SpecSet([Spec("perf", "ge", 0.0)])


def offsets_of(unit_params):
    """Candidate offset: the second normalised parameter mapped to
    [-4, 4] sigma-equivalents."""
    unit_params = np.atleast_2d(unit_params)
    column = unit_params[:, 1] if unit_params.shape[1] > 1 \
        else unit_params[:, 0]
    return 8.0 * column - 4.0


def synthetic_factory(unit_params):
    offsets = offsets_of(unit_params)

    def evaluate(point_indices, repeats, die_sample):
        x = C35.sigma_coordinates(die_sample)
        base = np.repeat(offsets[point_indices], repeats)
        return {"perf": base + x @ COEFS}

    return evaluate


def true_yield(offset):
    return 0.5 * (1.0 + math.erf(offset / NORM / math.sqrt(2.0)))


def fast_config(**overrides):
    settings = dict(seed=7, surrogate_train=24, surrogate_population=1500,
                    is_pilot=40, is_samples=120, include_mismatch=False)
    settings.update(overrides)
    return LadderConfig(**settings)


def ladder_with(config=None, ledger=None):
    return EstimatorLadder(synthetic_factory, SPECS, C35,
                           config or fast_config(), ledger=ledger)


def spread_unit_params(n=9):
    """Candidates sweeping the offset range (second column varied)."""
    unit = np.full((n, 2), 0.5)
    unit[:, 1] = np.linspace(0.0, 1.0, n)
    return unit


class TestLadderConfig:
    def test_fidelity_bounds_validated(self):
        with pytest.raises(OptimizationError):
            LadderConfig(min_fidelity=3)
        with pytest.raises(OptimizationError):
            LadderConfig(min_fidelity=2, max_fidelity=1)

    def test_bad_surrogate_kind_rejected(self):
        with pytest.raises(OptimizationError):
            LadderConfig(surrogate_kind="cubist")

    def test_target_validated(self):
        with pytest.raises(OptimizationError):
            LadderConfig(yield_target=1.5)

    def test_default_grid_is_nominal_only(self):
        grid = LadderConfig().corner_grid(C35)
        assert grid.vdds == (C35.supply,)
        assert grid.temps_c == (27.0,)
        assert set(grid.corners) == set(C35.corners)

    def test_fidelity_costs(self):
        config = fast_config()
        assert config.fidelity_cost(0, C35) == \
            config.corner_grid(C35).size
        assert config.fidelity_cost(1, C35) == config.surrogate_train
        assert config.fidelity_cost(2, C35) == \
            config.is_pilot + config.is_samples


class TestEstimatorLadder:
    @pytest.fixture(scope="class")
    def batch(self):
        ladder = ladder_with()
        unit = spread_unit_params()
        return ladder, ladder.estimate_batch(unit), offsets_of(unit)

    def test_extremes_resolve_at_corner_fidelity(self, batch):
        _, estimate, offsets = batch
        assert estimate.fidelity[0] == 0      # offset -4: hopeless
        assert estimate.fidelity[-1] == 0     # offset +4: bulletproof
        assert estimate.yield_estimate[0] < 0.1
        assert estimate.yield_estimate[-1] > 0.9

    def test_boundary_candidates_escalate(self, batch):
        _, estimate, offsets = batch
        boundary = [i for i, o in enumerate(offsets)
                    if 0.05 < true_yield(o) < 0.995]
        assert boundary
        assert all(estimate.fidelity[i] >= 1 for i in boundary)

    def test_estimates_track_analytic_truth(self, batch):
        _, estimate, offsets = batch
        for i, offset in enumerate(offsets):
            truth = true_yield(offset)
            error = abs(estimate.yield_estimate[i] - truth)
            assert error <= max(5.0 * estimate.std_error[i], 0.05), \
                f"offset {offset:+.2f}: est {estimate.yield_estimate[i]:.3f} " \
                f"vs truth {truth:.3f}"

    def test_robust_z_monotone_in_offset(self, batch):
        _, estimate, _ = batch
        assert np.all(np.diff(estimate.robust_z) >= -1e-9)

    def test_sims_accounting_consistent(self, batch):
        ladder, estimate, _ = batch
        assert int(estimate.sims.sum()) == ladder.counts.total_sims
        assert ladder.counts.total_candidates == estimate.size
        # The ledger carries the same totals, split by fidelity stage.
        ledger_total = sum(record.simulations
                           for name, record in ladder.ledger.stages.items()
                           if name.startswith("yield ladder:"))
        assert ledger_total == ladder.counts.total_sims

    def test_counts_table_mentions_every_fidelity(self, batch):
        ladder, _, _ = batch
        table = ladder.counts.table()
        for name in ("corner bounds", "surrogate classification",
                     "importance sampling", "TOTAL"):
            assert name in table

    def test_bit_identical_across_backends(self):
        unit = spread_unit_params(7)
        results = []
        for backend in ("serial", "thread:2"):
            ladder = ladder_with(fast_config(backend=backend))
            results.append(ladder.estimate_batch(unit))
        np.testing.assert_array_equal(results[0].yield_estimate,
                                      results[1].yield_estimate)
        np.testing.assert_array_equal(results[0].std_error,
                                      results[1].std_error)
        np.testing.assert_array_equal(results[0].fidelity,
                                      results[1].fidelity)

    def test_min_fidelity_forces_full_mc(self):
        ladder = ladder_with(fast_config(min_fidelity=2))
        estimate = ladder.estimate_batch(spread_unit_params(5))
        assert np.all(estimate.fidelity == 2)
        assert ladder.counts.sims[0] == 0
        assert ladder.counts.sims[1] == 0
        # robust_z undefined without the corner stage.
        assert np.all(np.isnan(estimate.robust_z))

    def test_max_fidelity_zero_is_corners_only(self):
        ladder = ladder_with(fast_config(max_fidelity=0))
        estimate = ladder.estimate_batch(spread_unit_params(5))
        assert np.all(estimate.fidelity == 0)
        assert np.all(np.isfinite(estimate.robust_z))
        assert ladder.counts.total_sims == \
            5 * ladder.grid.size

    def test_fidelity_budget_caps_escalation(self):
        grid_size = LadderConfig().corner_grid(C35).size
        unit = spread_unit_params(9)
        # Budget: corners for everyone + surrogate for at most two.
        budget = 9 * grid_size + 2 * 24
        ladder = ladder_with(fast_config(fidelity_budget=budget))
        estimate = ladder.estimate_batch(unit)
        assert ladder.counts.budget_exhausted
        assert ladder.counts.total_sims <= budget
        assert np.count_nonzero(estimate.fidelity == 1) <= 2
        assert np.count_nonzero(estimate.fidelity == 2) == 0
        # Everyone still has a (fidelity-0) estimate.
        assert np.all(np.isfinite(estimate.yield_estimate))

    def test_second_batch_uses_fresh_streams(self):
        ladder = ladder_with()
        unit = spread_unit_params(5)
        first = ladder.estimate_batch(unit)
        second = ladder.estimate_batch(unit)
        # Same candidates, different uids: estimates at escalated
        # fidelities must differ (independent draws), corners agree.
        escalated = first.fidelity >= 1
        assert np.any(escalated)
        assert not np.array_equal(first.yield_estimate[escalated],
                                  second.yield_estimate[escalated])


def base_problem():
    """Two-parameter base problem: a (f1, f2) trade-off along u0,
    yield driven by u1 through the synthetic evaluator."""
    def function(unit):
        return np.stack([unit[:, 0], 1.0 - unit[:, 0]], axis=1)

    return FunctionProblem(function, ("u0", "u1"),
                           (Objective("f1", "maximize"),
                            Objective("f2", "maximize")))


class TestYieldAugmentedProblem:
    def test_yield_mode_appends_objective(self):
        problem = YieldAugmentedProblem(base_problem(), ladder_with(),
                                        mode="yield")
        assert problem.objective_names() == ("f1", "f2", "yield_frac")
        values = problem(spread_unit_params(5))
        assert values.shape == (5, 3)
        assert np.all((values[:, 2] >= 0) & (values[:, 2] <= 1))
        # Yield rises with u1 by construction.
        assert values[-1, 2] > values[0, 2]

    def test_ksigma_mode_appends_robustness(self):
        problem = YieldAugmentedProblem(
            base_problem(), ladder_with(fast_config(max_fidelity=0)),
            mode="ksigma")
        assert problem.objective_names() == ("f1", "f2", "robust_z")
        values = problem(spread_unit_params(5))
        assert np.all(np.diff(values[:, 2]) >= -1e-9)

    def test_chance_mode_penalises_deficit(self):
        problem = YieldAugmentedProblem(base_problem(), ladder_with(),
                                        mode="chance", yield_target=0.9,
                                        penalty_weight=2.0)
        assert problem.objective_names() == ("f1", "f2")
        unit = np.array([[0.7, 0.0],    # yield ~ 0: heavy penalty
                         [0.7, 1.0]])   # yield ~ 1: no penalty
        values = problem(unit)
        assert values[0, 0] < values[1, 0]
        assert values[0, 1] < values[1, 1]
        assert values[1, 0] == pytest.approx(0.7, abs=1e-9)

    def test_annotations_aligned_with_archive(self):
        problem = YieldAugmentedProblem(base_problem(), ladder_with())
        problem(spread_unit_params(4))
        problem(spread_unit_params(3))
        annotations = problem.annotations()
        assert set(annotations) == {"yield", "yield_std_error", "fidelity",
                                    "ladder_sims", "robust_z"}
        assert all(values.shape == (7,) for values in annotations.values())

    def test_unknown_mode_rejected(self):
        with pytest.raises(OptimizationError):
            YieldAugmentedProblem(base_problem(), ladder_with(),
                                  mode="hope")


def search_config(**overrides):
    settings = dict(generations=5, population=12, seed=11,
                    ladder=fast_config())
    settings.update(overrides)
    return YieldSearchConfig(**settings)


class TestRunYieldSearch:
    @pytest.fixture(scope="class")
    def search(self):
        return run_yield_search(base_problem(), synthetic_factory, SPECS,
                                C35, search_config())

    def test_front_is_three_objective(self, search):
        assert search.objective_names == ("f1", "f2", "yield_frac")
        front = search.front_objectives()
        assert front.shape[1] == 3
        assert front.shape[0] == search.front_count() > 0

    def test_annotations_cover_archive_and_front(self, search):
        annotations = search.result.annotations
        assert annotations["yield"].shape == \
            (search.result.evaluations,)
        front_annotations = search.front_annotations()
        assert front_annotations["yield"].shape == \
            (search.front_count(),)

    def test_hypervolume_positive_and_shiftable(self, search):
        reference = (-0.01, -0.01, -0.01)
        hv = search.hypervolume(reference)
        assert hv > 0.0
        assert search.hypervolume(reference, yield_shift=0.05) >= hv

    def test_ladder_target_and_seed_overridden(self, search):
        assert search.problem.ladder.config.yield_target == \
            search.config.yield_target
        assert search.problem.ladder.config.seed == search.config.seed

    def test_reports_render(self, search):
        assert "yield-annotated Pareto front" in format_yield_front(search)
        assert "corner bounds" in format_ladder_summary(search.counts)
        comparison = format_guardband_comparison(
            search, "reference", {"f1": 0.5, "f2": 0.5})
        assert "reference" in comparison
        assert "target yield" in comparison
        assert "yield-aware search" in search.describe()

    def test_deterministic_repeat(self, search):
        repeat = run_yield_search(base_problem(), synthetic_factory, SPECS,
                                  C35, search_config())
        np.testing.assert_array_equal(repeat.result.all_objectives,
                                      search.result.all_objectives)
        np.testing.assert_array_equal(repeat.result.annotations["yield"],
                                      search.result.annotations["yield"])

    def test_wbga_optimizer_path(self):
        result = run_yield_search(
            base_problem(), synthetic_factory, SPECS, C35,
            search_config(optimizer="wbga", generations=4, population=10))
        assert result.front_count() > 0
        assert result.result.annotations is not None

    def test_ksigma_mode_caps_ladder(self):
        result = run_yield_search(
            base_problem(), synthetic_factory, SPECS, C35,
            search_config(mode="ksigma", generations=4, population=10))
        assert result.counts.sims[1] == 0
        assert result.counts.sims[2] == 0
        assert result.objective_names[-1] == "robust_z"

    def test_bad_config_rejected(self):
        with pytest.raises(OptimizationError):
            YieldSearchConfig(mode="wish")
        with pytest.raises(OptimizationError):
            YieldSearchConfig(optimizer="anneal")
