"""Pareto dominance utility tests, including 2-D fast path vs general."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.moo.pareto import (_mask_general, _mask_two_objectives,
                              crowding_distance, dominates,
                              fast_non_dominated_sort, non_dominated_mask,
                              pareto_front_indices)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([2, 2], [1, 1])
        assert dominates([2, 1], [1, 1])
        assert not dominates([1, 1], [2, 2])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([2, 0], [0, 2])
        assert not dominates([0, 2], [2, 0])


class TestNonDominatedMask:
    def test_simple_front(self):
        values = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0],
                           [1.0, 1.0], [0.5, 2.5]])
        mask = non_dominated_mask(values)
        np.testing.assert_array_equal(mask, [True, True, True, False, False])

    def test_single_point(self):
        assert non_dominated_mask(np.array([[1.0, 2.0]]))[0]

    def test_duplicates_all_kept(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0], [0.5, 0.5]])
        mask = non_dominated_mask(values)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_nan_rows_excluded(self):
        values = np.array([[np.nan, 5.0], [1.0, 1.0]])
        mask = non_dominated_mask(values)
        np.testing.assert_array_equal(mask, [False, True])

    def test_all_nan(self):
        values = np.full((3, 2), np.nan)
        assert not non_dominated_mask(values).any()

    def test_three_objectives(self):
        values = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1],
                           [0.4, 0.4, 0.4], [0.1, 0.1, 0.1]])
        mask = non_dominated_mask(values)
        np.testing.assert_array_equal(mask, [True, True, True, True, False])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
                    min_size=1, max_size=60))
    def test_2d_fast_path_equals_general(self, points):
        values = np.asarray(points, dtype=float)
        fast = _mask_two_objectives(values)
        general = _mask_general(values)
        np.testing.assert_array_equal(fast, general)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                    min_size=2, max_size=40))
    def test_front_members_mutually_non_dominated(self, points):
        values = np.asarray(points, dtype=float)
        mask = non_dominated_mask(values)
        front = values[mask]
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
                    min_size=2, max_size=40))
    def test_dominated_points_have_dominator_on_front(self, points):
        values = np.asarray(points, dtype=float)
        mask = non_dominated_mask(values)
        front = values[mask]
        for k in np.nonzero(~mask)[0]:
            assert any(dominates(f, values[k]) or np.array_equal(f, values[k])
                       for f in front)


class TestFrontIndices:
    def test_sorted_by_first_objective(self):
        values = np.array([[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]])
        indices = pareto_front_indices(values)
        sorted_first = values[indices, 0]
        assert np.all(np.diff(sorted_first) >= 0)


class TestCrowding:
    def test_boundaries_infinite(self):
        values = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        crowd = crowding_distance(values)
        assert crowd[0] == np.inf and crowd[-1] == np.inf
        assert np.isfinite(crowd[1]) and np.isfinite(crowd[2])

    def test_small_sets_all_infinite(self):
        assert np.all(crowding_distance(np.array([[1.0, 2.0]])) == np.inf)
        assert np.all(
            crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]])) == np.inf)

    def test_sparser_point_has_higher_distance(self):
        values = np.array([[0.0, 4.0], [1.0, 3.0], [1.2, 2.9],
                           [3.0, 1.0], [4.0, 0.0]])
        crowd = crowding_distance(values)
        # Point 3 sits in a sparse region; points 1, 2 are crowded.
        assert crowd[3] > crowd[1]
        assert crowd[3] > crowd[2]


class TestFastNonDominatedSort:
    def test_layered_fronts(self):
        values = np.array([
            [3.0, 3.0],          # front 0
            [2.0, 2.0],          # front 1
            [1.0, 1.0],          # front 2
        ])
        fronts = fast_non_dominated_sort(values)
        assert [f.tolist() for f in fronts] == [[0], [1], [2]]

    def test_front_zero_matches_mask(self):
        rng = np.random.default_rng(0)
        values = rng.random((50, 2))
        fronts = fast_non_dominated_sort(values)
        mask = non_dominated_mask(values)
        assert set(fronts[0].tolist()) == set(np.nonzero(mask)[0].tolist())

    def test_all_points_assigned_once(self):
        rng = np.random.default_rng(1)
        values = rng.random((30, 3))
        fronts = fast_non_dominated_sort(values)
        assigned = np.concatenate(fronts)
        assert sorted(assigned.tolist()) == list(range(30))


def _brute_force_mask(values: np.ndarray) -> np.ndarray:
    """Reference non-dominated mask: a direct double loop over
    :func:`dominates` (the textbook definition, any dimension)."""
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i != j and dominates(values[j], values[i]):
                mask[i] = False
                break
    return mask


def _nd_point_lists(max_points=24):
    """Hypothesis strategy: random 3- or 4-objective point sets with
    deliberate duplicate/tie pressure (values snap to a 0.5 grid)."""
    coordinate = st.floats(-4, 4).map(lambda value: round(2 * value) / 2)
    return st.integers(3, 4).flatmap(
        lambda dims: st.lists(
            st.lists(coordinate, min_size=dims, max_size=dims),
            min_size=1, max_size=max_points))


class TestGeneralDimensionProperties:
    """Property-based coverage of the >=3-objective paths (the
    yield-augmented fronts of repro.optimize exercise exactly these)."""

    @settings(max_examples=60, deadline=None)
    @given(_nd_point_lists())
    def test_mask_general_agrees_with_brute_force(self, points):
        values = np.asarray(points, dtype=float)
        np.testing.assert_array_equal(_mask_general(values),
                                      _brute_force_mask(values))

    @settings(max_examples=30, deadline=None)
    @given(_nd_point_lists())
    def test_mask_general_chunking_invariant(self, points):
        values = np.asarray(points, dtype=float)
        np.testing.assert_array_equal(_mask_general(values, chunk=1),
                                      _mask_general(values, chunk=256))

    @settings(max_examples=40, deadline=None)
    @given(_nd_point_lists())
    def test_sort_fronts_mutually_non_dominating(self, points):
        values = np.asarray(points, dtype=float)
        fronts = fast_non_dominated_sort(values)
        for front in fronts:
            members = values[front]
            for i in range(members.shape[0]):
                for j in range(members.shape[0]):
                    if i != j:
                        assert not dominates(members[i], members[j])

    @settings(max_examples=40, deadline=None)
    @given(_nd_point_lists())
    def test_sort_partitions_and_layers_correctly(self, points):
        values = np.asarray(points, dtype=float)
        fronts = fast_non_dominated_sort(values)
        assigned = np.concatenate(fronts)
        assert sorted(assigned.tolist()) == list(range(values.shape[0]))
        # Front 0 is exactly the non-dominated set; every later layer's
        # member is dominated by someone in the layer above.
        np.testing.assert_array_equal(
            np.sort(fronts[0]), np.nonzero(_brute_force_mask(values))[0])
        for level in range(1, len(fronts)):
            for index in fronts[level]:
                assert any(dominates(values[j], values[index])
                           for j in fronts[level - 1])
