"""Pareto-front table model tests."""

import numpy as np
import pytest

from repro.errors import ExtrapolationError, TableModelError
from repro.tablemodel import ParetoTableModel, read_table


def synthetic_front(k=25):
    """A monotone (gain up, pm down) front with attached columns."""
    gain = np.linspace(45.0, 55.0, k)
    pm = 95.0 - 0.02 * (gain - 40.0) ** 2.5
    length = 0.5e-6 + (gain - 45.0) * 0.3e-6
    delta = 1.2 - 0.05 * (gain - 45.0)
    return ParetoTableModel(
        np.stack([gain, pm], axis=1), ("gain_db", "pm_deg"),
        columns={"l4": length, "gain_db_delta_pct": delta})


class TestConstruction:
    def test_valid_front(self):
        table = synthetic_front()
        assert table.size == 25
        assert table.objective_names == ("gain_db", "pm_deg")

    def test_sorting_by_first_objective(self):
        gain = np.array([50.0, 48.0, 52.0])
        pm = np.array([80.0, 82.0, 78.0])
        table = ParetoTableModel(np.stack([gain, pm], 1),
                                 ("gain_db", "pm_deg"))
        assert np.all(np.diff(table.objectives[:, 0]) > 0)

    def test_dominated_points_rejected(self):
        gain = np.array([48.0, 50.0, 52.0])
        pm = np.array([80.0, 85.0, 78.0])  # middle point dominates first
        with pytest.raises(TableModelError, match="Pareto front"):
            ParetoTableModel(np.stack([gain, pm], 1), ("g", "p"))

    def test_column_length_mismatch(self):
        with pytest.raises(TableModelError, match="entries"):
            ParetoTableModel(np.array([[1.0, 2.0], [2.0, 1.0]]), ("a", "b"),
                             columns={"c": np.array([1.0])})

    def test_needs_two_points(self):
        with pytest.raises(TableModelError):
            ParetoTableModel(np.array([[1.0, 2.0]]), ("a", "b"))

    def test_wrong_shape(self):
        with pytest.raises(TableModelError):
            ParetoTableModel(np.array([1.0, 2.0]), ("a", "b"))

    def test_minimisation_directions_validate(self):
        # Both objectives minimised: f1 up must mean f0 down -> this set
        # is a valid min-min front.
        f0 = np.array([1.0, 2.0, 3.0])
        f1 = np.array([3.0, 2.0, 1.0])
        ParetoTableModel(np.stack([f0, f1], 1), ("a", "b"),
                         directions=(-1.0, -1.0))


class TestLookup:
    def test_lookup_by_either_objective(self):
        table = synthetic_front()
        by_gain = float(table.lookup("gain_db", 50.0, "l4"))
        pm_at_50 = float(table.trade_off("gain_db", 50.0))
        by_pm = float(table.lookup("pm_deg", pm_at_50, "l4"))
        assert by_gain == pytest.approx(by_pm, rel=1e-6)

    def test_lookup_exact_point(self):
        table = synthetic_front()
        gain0 = table.objectives[3, 0]
        assert float(table.lookup("gain_db", gain0, "l4")) == pytest.approx(
            table.columns["l4"][3])

    def test_lookup_objective_column(self):
        table = synthetic_front()
        assert float(table.lookup("gain_db", 50.0, "pm_deg")) == \
            pytest.approx(float(table.trade_off("gain_db", 50.0)))

    def test_lookup_by_index(self):
        table = synthetic_front()
        assert float(table.lookup(0, 50.0, "l4")) == pytest.approx(
            float(table.lookup("gain_db", 50.0, "l4")))

    def test_unknown_column(self):
        with pytest.raises(TableModelError, match="unknown column"):
            synthetic_front().lookup("gain_db", 50.0, "nope")

    def test_unknown_objective(self):
        with pytest.raises(TableModelError, match="unknown objective"):
            synthetic_front().lookup("watts", 50.0, "l4")

    def test_extrapolation_raises_by_default(self):
        with pytest.raises(ExtrapolationError):
            synthetic_front().lookup("gain_db", 99.0, "l4")

    def test_clamp_option(self):
        table = synthetic_front()
        clamped = float(table.lookup("gain_db", 99.0, "l4",
                                     extrapolation="C"))
        assert clamped == pytest.approx(table.columns["l4"][-1])

    def test_degree_option(self):
        table = synthetic_front()
        linear = float(table.lookup("gain_db", 50.3, "l4", degree="1"))
        cubic = float(table.lookup("gain_db", 50.3, "l4", degree="3"))
        assert linear == pytest.approx(cubic, rel=1e-3)

    def test_key_range(self):
        table = synthetic_front()
        assert table.key_range("gain_db") == (45.0, 55.0)


class TestLookup2:
    def test_consistent_on_front(self):
        table = synthetic_front()
        pm = float(table.trade_off("gain_db", 51.2))
        two_input = float(table.lookup2(51.2, pm, "l4"))
        one_input = float(table.lookup("gain_db", 51.2, "l4"))
        assert two_input == pytest.approx(one_input, rel=1e-6)

    def test_blends_off_front_queries(self):
        table = synthetic_front()
        pm_true = float(table.trade_off("gain_db", 50.0))
        answer = float(table.lookup2(50.0, pm_true + 0.5, "l4"))
        low = float(table.lookup("gain_db", 50.0, "l4"))
        high = float(table.lookup("pm_deg", pm_true + 0.5, "l4"))
        assert min(low, high) <= answer <= max(low, high)


class TestPersistence:
    def test_write_tbl_1d(self, tmp_path):
        table = synthetic_front()
        path = tmp_path / "gain_delta.tbl"
        table.write_tbl(path, "gain_db_delta_pct", key_objective=0,
                        header="variation")
        coords, values = read_table(path)
        assert coords.shape[1] == 1
        np.testing.assert_allclose(values, table.columns["gain_db_delta_pct"])

    def test_write_tbl2(self, tmp_path):
        table = synthetic_front()
        path = tmp_path / "lp4.tbl"
        table.write_tbl2(path, "l4")
        coords, values = read_table(path)
        assert coords.shape[1] == 2
        np.testing.assert_allclose(values, table.columns["l4"])
