"""Tests for the SPICE-like netlist parser.

Multi-line reference netlists live in the ``tests/netlists`` fixture
corpus (loaded via the ``netlist`` fixture from conftest) so the lint
tests, CLI tests and parser tests all exercise the same files; short
single-purpose snippets stay inline.
"""

import numpy as np
import pytest

from repro.analysis import ac_analysis, dc_operating_point
from repro.circuit import Capacitor, Mosfet, Resistor
from repro.circuit.parser import NetlistParser, parse_netlist
from repro.errors import ParseError
from repro.process import C35
from repro.units import SI_SUFFIXES


class TestBasicCards:
    def test_divider_parses_and_solves(self, netlist):
        c = parse_netlist(netlist("good_divider"))
        assert len(c) == 3
        op = dc_operating_point(c)
        assert op.v("out")[0] == pytest.approx(5.0)

    def test_all_passive_elements(self):
        c = parse_netlist("""
        V1 a 0 1
        R1 a b 1k
        C1 b 0 10p
        L1 b c 1u
        R2 c 0 1k
        """)
        assert isinstance(c.element("R1"), Resistor)
        assert isinstance(c.element("C1"), Capacitor)
        assert c.element("C1").capacitance == pytest.approx(10e-12)

    def test_continuation_lines(self, netlist):
        c = parse_netlist(netlist("good_rc_ladder"))
        assert c.element("R1").resistance == pytest.approx(1000.0)
        assert c.element("R3").resistance == pytest.approx(1000.0)

    def test_inline_semicolon_comment(self):
        c = parse_netlist("""
        V1 a 0 1 ; drive
        R1 a 0 1k ; load
        """)
        assert len(c) == 2

    def test_case_of_ground(self):
        c = parse_netlist("""
        V1 a gnd 1
        R1 a GND 1k
        """)
        op = dc_operating_point(c)
        assert op.v("a")[0] == pytest.approx(1.0)

    def test_end_card_stops_parsing(self, netlist):
        c = parse_netlist(netlist("good_hierarchical"))
        assert "R99" not in c  # card after .end

    def test_analysis_cards_ignored(self):
        c = parse_netlist("""
        V1 a 0 1
        R1 a 0 1k
        .ac dec 10 1 1meg
        .op
        """)
        assert len(c) == 2


class TestSources:
    def test_dc_and_ac_spec(self):
        c = parse_netlist("V1 in 0 DC 1.5 AC 1 90\nR1 in 0 1k")
        src = c.element("V1")
        assert src.dc == 1.5
        assert src.ac_mag == 1.0
        assert src.ac_phase_deg == 90.0

    def test_plain_value(self):
        c = parse_netlist("V1 in 0 3.3\nR1 in 0 1k")
        assert c.element("V1").dc == pytest.approx(3.3)

    def test_current_source(self):
        c = parse_netlist("I1 0 n 1m\nR1 n 0 1k")
        op = dc_operating_point(c)
        assert op.v("n")[0] == pytest.approx(1.0)

    def test_ac_solves(self):
        c = parse_netlist("""
        V1 in 0 DC 0 AC 1
        R1 in out 1k
        C1 out 0 1u
        """)
        res = ac_analysis(c, [159.154])  # the RC corner
        assert res.magnitude_db("out")[0, 0] == pytest.approx(-3.01, abs=0.05)

    def test_controlled_sources(self):
        c = parse_netlist("""
        V1 in 0 2
        E1 e 0 in 0 5
        G1 0 g in 0 1m
        Rg g 0 1k
        Re e 0 1k
        """)
        op = dc_operating_point(c)
        assert op.v("e")[0] == pytest.approx(10.0)
        assert op.v("g")[0] == pytest.approx(2.0)


class TestModels:
    def test_model_card(self, netlist):
        c = parse_netlist(netlist("good_mosfet_amp"))
        m1 = c.element("M1")
        assert isinstance(m1, Mosfet)
        assert m1.model.vto == pytest.approx(0.6)
        assert m1.model.kp == pytest.approx(120e-6)
        assert np.asarray(m1.w) == pytest.approx(20e-6)

    def test_pdk_preseeded_models(self):
        c = parse_netlist("""
        V1 d 0 2
        V2 g 0 1.2
        M1 d g 0 0 nmos W=10u L=1u
        """, models=C35.models)
        assert c.element("M1").model is C35.nmos

    def test_undefined_model_rejected(self):
        with pytest.raises(ParseError, match="undefined MOSFET model"):
            parse_netlist("M1 d g 0 0 missing W=1u L=1u\nV1 d 0 1")

    def test_unsupported_model_type(self):
        with pytest.raises(ParseError, match="unsupported model type"):
            parse_netlist(".model q1 npn (bf=100)")

    def test_unknown_model_params_tolerated(self):
        c = parse_netlist("""
        .model m1 nmos (vto=0.5 kp=100u nsub=1e17 tox=7.6n xj=0.3u)
        V1 d 0 1
        M1 d d 0 0 m1 W=1u L=1u
        """)
        assert c.element("M1").model.vto == 0.5


class TestSubcircuits:
    def test_flattening_names(self, netlist):
        c = parse_netlist(netlist("good_divby2_chain"))
        names = {e.name for e in c}
        assert "X1.R1" in names and "X2.R2" in names

    def test_flattened_solution(self, netlist):
        c = parse_netlist(netlist("good_divby2_chain"))
        op = dc_operating_point(c)
        # Second stage loads the first: 8V -> 3.2V -> 1.6V (approximately,
        # with the huge Rload negligible).
        assert op.v("mid")[0] == pytest.approx(3.2, rel=1e-3)
        assert op.v("end")[0] == pytest.approx(1.6, rel=1e-3)

    def test_internal_nodes_are_isolated(self):
        c = parse_netlist("""
        .subckt cell in out
        R1 in internal 1k
        R2 internal out 1k
        .ends
        V1 a 0 1
        X1 a b cell
        X2 a c cell
        Rb b 0 1k
        Rc c 0 1k
        """)
        topo = c.compile()
        assert "X1.internal" in topo.node_names
        assert "X2.internal" in topo.node_names

    def test_port_count_mismatch(self):
        with pytest.raises(ParseError, match="ports"):
            parse_netlist("""
            .subckt cell a b
            R1 a b 1k
            .ends
            V1 x 0 1
            X1 x cell
            """)

    def test_undefined_subcircuit(self):
        with pytest.raises(ParseError, match="undefined subcircuit"):
            parse_netlist("V1 a 0 1\nX1 a b nothere")

    def test_unclosed_subcircuit(self):
        with pytest.raises(ParseError, match="never closed"):
            parse_netlist(".subckt cell a b\nR1 a b 1k")

    def test_nested_definition_rejected(self):
        with pytest.raises(ParseError, match="nested"):
            parse_netlist(".subckt a x\n.subckt b y\n.ends\n.ends")

    def test_recursive_instantiation_guarded(self, netlist):
        # A self-instantiating subcircuit must hit the flattening depth
        # guard, not recurse forever.
        with pytest.raises(ParseError, match="nesting deeper than"):
            parse_netlist(netlist("bad_recursive_subckt"))

    def test_deep_but_finite_nesting_allowed(self):
        # A legitimate chain below the guard flattens fine.
        lines = []
        for i in range(8):
            inner = f"X1 a b level{i - 1}" if i else "R1 a b 1k"
            lines += [f".subckt level{i} a b", inner, ".ends"]
        lines += ["V1 in 0 1", "X0 in 0 level7"]
        c = parse_netlist("\n".join(lines))
        assert any("R1" in e.name for e in c)


class TestGlobalNodes:
    def test_global_nodes_not_prefixed(self, netlist):
        c = parse_netlist(netlist("good_hierarchical"))
        # Subcircuit-internal references to the .global node map to the
        # top-level net, not a flattened local one.
        assert "X0.X1.Rtop" in {e.name for e in c}
        assert c.element("X0.X1.Rtop").nodes[0] == "vdd"
        op = dc_operating_point(c)
        assert op.v("vdd")[0] == pytest.approx(3.3)

    def test_global_requires_arguments(self):
        with pytest.raises(ParseError, match="at least one node"):
            parse_netlist(".global\nV1 a 0 1\nR1 a 0 1k")


class TestParams:
    def test_param_substitution(self, netlist):
        c = parse_netlist(netlist("good_params"))
        assert c.element("R1").resistance == pytest.approx(2200.0)
        assert c.element("C1").capacitance == pytest.approx(10e-12)


class TestNumerics:
    #: Every suffix of the SPICE dialect and its multiplier, exercised
    #: through full element cards (not just parse_si) in lower, UPPER
    #: and Mixed case -- suffixes are case-insensitive.
    SUFFIX_CASES = sorted(SI_SUFFIXES.items())

    @pytest.mark.parametrize("suffix,multiplier", SUFFIX_CASES)
    def test_every_suffix_on_an_element_card(self, suffix, multiplier):
        for variant in (suffix.lower(), suffix.upper(), suffix.title()):
            c = parse_netlist(f"V1 a 0 1\nR1 a 0 3{variant}")
            assert c.element("R1").resistance == \
                pytest.approx(3.0 * multiplier), variant

    def test_meg_and_mil_are_not_milli(self):
        c = parse_netlist("V1 a 0 1\nR1 a b 1meg\nR2 b c 1mil\nR3 c 0 1m")
        assert c.element("R1").resistance == pytest.approx(1e6)
        assert c.element("R2").resistance == pytest.approx(25.4e-6)
        assert c.element("R3").resistance == pytest.approx(1e-3)

    def test_suffix_corpus_file(self, netlist):
        c = parse_netlist(netlist("good_suffixes"))
        assert c.element("Rmeg1").resistance == pytest.approx(1e6)
        assert c.element("Rmeg2").resistance == pytest.approx(1e6)
        assert c.element("Rmil1").resistance == pytest.approx(25.4e-6)
        assert c.element("Rmil2").resistance == pytest.approx(25.4e-6)
        assert c.element("Runit").resistance == pytest.approx(10e3)

    def test_malformed_number_raises_with_line(self, netlist):
        with pytest.raises(ParseError, match="malformed numeric") as exc:
            parse_netlist(netlist("bad_malformed_number"))
        assert exc.value.line_no == 3
        assert "line 3" in str(exc.value)

    @pytest.mark.parametrize("card", [
        "C1 a 0 farads", "L1 a 0 henries", "I1 a 0 amps",
        "M1 a g 0 0 nmos W=wide L=1u",
    ])
    def test_malformed_numbers_everywhere(self, card):
        with pytest.raises(ParseError, match="malformed numeric"):
            parse_netlist(f"V1 a 0 1\n{card}", models=C35.models)


class TestLineNumbers:
    def test_elements_carry_source_lines(self, netlist):
        c = parse_netlist(netlist("good_divider"))
        assert c.element("V1").line_no == 2
        assert c.element("R2").line_no == 4

    def test_continuation_attributes_first_line(self, netlist):
        c = parse_netlist(netlist("good_rc_ladder"))
        assert c.element("R1").line_no == 3  # card spans lines 3-4

    def test_flattened_elements_carry_definition_lines(self, netlist):
        c = parse_netlist(netlist("good_divby2_chain"))
        assert c.element("X1.R1").line_no == 3  # inside the .subckt body

    def test_programmatic_elements_have_none(self):
        assert Resistor("R1", "a", "b", 1e3).line_no is None


class TestErrors:
    def test_line_numbers_in_errors(self):
        try:
            parse_netlist("V1 a 0 1\nR1 a 0 1k\nQ1 c b e model")
        except ParseError as exc:
            assert "line 3" in str(exc) or exc.line_no == 3
        else:
            pytest.fail("expected ParseError")

    def test_unknown_element_type(self):
        with pytest.raises(ParseError, match="unknown element"):
            parse_netlist("Z1 a b 1k")

    def test_missing_nodes(self):
        with pytest.raises(ParseError):
            parse_netlist("R1 a 1k")

    def test_orphan_continuation(self):
        with pytest.raises(ParseError, match="continuation"):
            parse_netlist("+ 1k")

    def test_ends_without_subckt(self):
        with pytest.raises(ParseError, match=".ends without"):
            parse_netlist(".ends")

    def test_parser_reuse_keeps_models(self):
        parser = NetlistParser()
        parser.parse(".model m1 nmos (vto=0.4 kp=100u)\nV1 a 0 1\nR1 a 0 1k")
        c2 = parser.parse("V1 d 0 1\nM1 d d 0 0 m1 W=1u L=1u")
        assert c2.element("M1").model.vto == pytest.approx(0.4)
