"""Process kit tests: corners, global statistics, Pelgrom mismatch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.process import (C35, MismatchModel, ProcessSample, make_c35)


class TestKitStructure:
    def test_c35_headline_values(self):
        assert C35.nmos.vto == pytest.approx(0.5)
        assert C35.pmos.vto == pytest.approx(-0.65)
        assert C35.supply == 3.3
        assert set(C35.corners) == {"tm", "wp", "ws", "wo", "wz"}

    def test_model_lookup(self):
        assert C35.model("n") is C35.nmos
        assert C35.model("p") is C35.pmos
        with pytest.raises(ReproError):
            C35.model("x")

    def test_models_dict_for_parser(self):
        assert C35.models["nmos"] is C35.nmos

    def test_make_c35_fresh_instance(self):
        assert make_c35() is not C35


class TestCorners:
    def test_tm_is_identity(self):
        sample = C35.corner_sample("tm")
        assert sample.dvto_n[0] == 0.0
        assert sample.kp_scale_n[0] == 1.0
        assert sample.cap_scale[0] == 1.0

    def test_wp_is_fast(self):
        sample = C35.corner_sample("wp")
        assert sample.dvto_n[0] < 0      # lower threshold
        assert sample.kp_scale_n[0] > 1  # more current

    def test_ws_is_slow(self):
        sample = C35.corner_sample("ws")
        assert sample.dvto_n[0] > 0
        assert sample.kp_scale_n[0] < 1

    def test_cross_corners(self):
        wo = C35.corner_sample("wo")
        assert wo.dvto_n[0] < 0 and wo.dvto_p[0] > 0
        wz = C35.corner_sample("wz")
        assert wz.dvto_n[0] > 0 and wz.dvto_p[0] < 0

    def test_unknown_corner(self):
        with pytest.raises(ReproError, match="unknown corner"):
            C35.corner_sample("ff")

    def test_corner_moves_ota_gain(self):
        from repro.designs.ota import OTAParameters, evaluate_ota
        params = OTAParameters()
        tm = evaluate_ota(params, variations=C35.corner_sample("tm"))
        ws = evaluate_ota(params, variations=C35.corner_sample("ws"))
        assert tm["gain_db"][0] != pytest.approx(ws["gain_db"][0], abs=1e-3)


class TestGlobalSampling:
    def test_sample_statistics(self):
        rng = np.random.default_rng(42)
        sample = C35.sample(20000, rng, include_mismatch=False)
        gv = C35.global_variation
        assert np.mean(sample.dvto_n) == pytest.approx(0.0, abs=5e-4)
        assert np.std(sample.dvto_n) == pytest.approx(gv.sigma_vto_n, rel=0.05)
        assert np.mean(sample.kp_scale_n) == pytest.approx(1.0, abs=1e-3)
        assert np.std(sample.cap_scale) == pytest.approx(gv.sigma_cap,
                                                         rel=0.05)

    def test_kp_never_nonpositive(self):
        rng = np.random.default_rng(0)
        sample = C35.sample(50000, rng, include_mismatch=False)
        assert np.all(sample.kp_scale_n > 0)
        assert np.all(sample.cap_scale > 0)

    def test_disable_global(self):
        rng = np.random.default_rng(0)
        sample = C35.sample(10, rng, include_global=False,
                            include_mismatch=False)
        assert np.all(sample.dvto_n == 0)
        assert np.all(sample.kp_scale_p == 1)

    def test_nominal_classmethod(self):
        sample = ProcessSample.nominal(3)
        assert sample.size == 3
        assert np.all(sample.cap_scale == 1.0)

    def test_mismatch_requires_rng(self):
        with pytest.raises(ReproError, match="rng"):
            ProcessSample(2, dvto_n=0, kp_scale_n=1, dvto_p=0, kp_scale_p=1,
                          mismatch=MismatchModel())


class TestMismatchModel:
    def test_pelgrom_scaling(self):
        mm = MismatchModel(avt_n=10e-9)
        small = float(mm.sigma_vt_pair("n", 1e-12))   # 1 um^2
        large = float(mm.sigma_vt_pair("n", 4e-12))   # 4 um^2
        assert small == pytest.approx(2 * large)
        assert small == pytest.approx(10e-3)  # 10 mV at 1 um^2

    def test_device_sigma_is_pair_over_sqrt2(self):
        mm = MismatchModel()
        area = 2e-11
        assert float(mm.sigma_vt_device("n", area)) == pytest.approx(
            float(mm.sigma_vt_pair("n", area)) / np.sqrt(2))

    def test_polarity_coefficients(self):
        mm = MismatchModel(avt_n=7e-9, avt_p=10e-9)
        assert mm.coefficients("n")[0] == 7e-9
        assert mm.coefficients("p")[0] == 10e-9
        with pytest.raises(ReproError):
            mm.coefficients("z")

    def test_draw_statistics(self):
        mm = MismatchModel(avt_n=10e-9, abeta_n=0.02e-6)
        rng = np.random.default_rng(3)
        area = 1e-12
        dvt, dbeta = mm.draw("n", area, 20000, rng)
        assert np.std(dvt) == pytest.approx(
            float(mm.sigma_vt_device("n", area)), rel=0.05)
        assert np.std(dbeta) == pytest.approx(
            float(mm.sigma_beta_device("n", area)), rel=0.05)

    def test_draw_rejects_bad_area(self):
        with pytest.raises(ReproError):
            MismatchModel().draw("n", 0.0, 10, np.random.default_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(area=st.floats(min_value=1e-13, max_value=1e-9))
    def test_pair_difference_has_pelgrom_sigma(self, area):
        mm = MismatchModel(avt_n=9.5e-9)
        rng = np.random.default_rng(17)
        a, _ = mm.draw("n", area, 4000, rng)
        b, _ = mm.draw("n", area, 4000, rng)
        measured = np.std(a - b)
        assert measured == pytest.approx(float(mm.sigma_vt_pair("n", area)),
                                         rel=0.1)


class TestDeviceVariation:
    def test_global_shared_mismatch_independent(self):
        rng = np.random.default_rng(5)
        sample = C35.sample(500, rng)
        d1, _ = sample.device_variation(C35.nmos, 20e-6, 1e-6)
        d2, _ = sample.device_variation(C35.nmos, 20e-6, 1e-6)
        # Same global part, different mismatch draw -> correlated but not
        # identical.
        assert not np.allclose(d1, d2)
        correlation = np.corrcoef(d1, d2)[0, 1]
        assert correlation > 0.5  # the shared global component

    def test_larger_devices_vary_less(self):
        rng = np.random.default_rng(6)
        sample = C35.sample(4000, rng, include_global=False)
        d_small, _ = sample.device_variation(C35.nmos, 10e-6, 0.35e-6)
        d_large, _ = sample.device_variation(C35.nmos, 60e-6, 4e-6)
        assert np.std(d_large) < np.std(d_small) / 3

    def test_polarity_routing(self):
        sample = ProcessSample(2, dvto_n=0.01, kp_scale_n=1.1,
                               dvto_p=0.02, kp_scale_p=0.9)
        dn, bn = sample.device_variation(C35.nmos, 1e-5, 1e-6)
        dp, bp = sample.device_variation(C35.pmos, 1e-5, 1e-6)
        assert np.all(dn == 0.01) and np.all(bn == 1.1)
        assert np.all(dp == 0.02) and np.all(bp == 0.9)
