"""Rare-event (high-sigma) estimator tests.

The ground-truth classes run against the analytic linear-Gaussian
fixtures of :mod:`statcheck`, whose failure probability is *exactly*
``Phi(-beta)`` -- the only way to validate a 1e-9 estimate, since no
direct simulation could ever produce a reference at that level.  All
tolerances are CI-derived: the estimator is asked to contain the exact
truth in its own 99.9 % interval, so a correct implementation flakes
~once per thousand reruns per assertion and a biased one fails
deterministically.

The property-based classes (marked ``statistical``) check the
estimator's structural invariants: backend/worker bit-invariance,
monotonicity of the failure probability in the spec threshold, and
determinism of the splitting-level walk under a ``max_levels`` cap.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import YieldModelError
from repro.mc import MCConfig, monte_carlo
from repro.process import C35
from repro.yieldmodel import (ImportanceSamplingConfig, RareEventConfig,
                              RareEventResult, RareLevel,
                              direct_mc_samples_for_halfwidth,
                              equivalent_sigma, estimate_yield,
                              estimate_yield_importance, estimate_yield_rare)
from statcheck import (intervals_overlap, linear_gaussian_problem,
                       normal_tail)


def _rare(problem, **overrides):
    """Run the estimator on an analytic fixture with test-scale budgets."""
    defaults = dict(n_per_level=1500, n_final=3000, include_mismatch=False,
                    confidence=0.999, chunk_lanes=1000)
    defaults.update(overrides)
    return estimate_yield_rare(problem.evaluator, problem.specs,
                               problem.pdk, RareEventConfig(**defaults))


class TestEquivalentSigma:
    def test_round_trips_the_normal_tail(self):
        for beta in (0.0, 1.0, 2.0, 4.0, 6.0):
            assert equivalent_sigma(normal_tail(beta)) == \
                pytest.approx(beta, abs=1e-6)

    def test_edge_cases(self):
        assert equivalent_sigma(0.0) == np.inf
        assert equivalent_sigma(0.5) == pytest.approx(0.0, abs=1e-9)
        assert equivalent_sigma(0.9) < 0.0
        with pytest.raises(YieldModelError):
            equivalent_sigma(-0.1)
        with pytest.raises(YieldModelError):
            equivalent_sigma(1.5)

    def test_direct_mc_equivalent_count(self):
        # 10 % relative precision on a 1e-6 failure rate at 95 %:
        # n = z^2 p (1-p) / h^2 ~ 3.84e8 -- the cost direct MC would pay.
        n = direct_mc_samples_for_halfwidth(1e-6, 1e-7, 0.95)
        assert n == pytest.approx(3.84e8, rel=0.01)
        with pytest.raises(YieldModelError):
            direct_mc_samples_for_halfwidth(0.0, 0.1)
        with pytest.raises(YieldModelError):
            direct_mc_samples_for_halfwidth(0.5, 0.0)


class TestConfigValidation:
    def test_bad_budgets_rejected(self):
        with pytest.raises(YieldModelError):
            RareEventConfig(n_per_level=1)
        with pytest.raises(YieldModelError):
            RareEventConfig(n_final=0)
        with pytest.raises(YieldModelError):
            RareEventConfig(max_levels=0)
        with pytest.raises(YieldModelError):
            RareEventConfig(level_quantile=1.0)
        with pytest.raises(YieldModelError):
            RareEventConfig(max_shift_sigma=0.0)
        with pytest.raises(YieldModelError):
            RareEventConfig(chunk_lanes=0)


class TestGroundTruth:
    """The acceptance-criteria checks: exact Phi(-beta) at 4/5/6 sigma."""

    @pytest.mark.parametrize("beta", [4.0, 5.0, 6.0])
    def test_high_sigma_truth_within_ci(self, beta):
        problem = linear_gaussian_problem(beta)
        result = _rare(problem)
        assert result.levels_converged
        lo, hi = result.interval
        assert lo <= problem.p_fail <= hi, (
            f"beta={beta}: exact p_fail {problem.p_fail:.3e} outside "
            f"the 99.9% CI [{lo:.3e}, {hi:.3e}]")
        # The equivalent-sigma readout must land on beta to the
        # precision the CI itself implies.
        sigma_lo = equivalent_sigma(hi)
        sigma_hi = equivalent_sigma(lo)
        assert sigma_lo <= beta <= sigma_hi

    def test_moderate_sigma_truth_within_ci(self):
        problem = linear_gaussian_problem(2.5)
        result = _rare(problem)
        lo, hi = result.interval
        assert lo <= problem.p_fail <= hi

    def test_mismatch_does_not_bias_the_estimate(self):
        # The fixture ignores mismatch, so carrying it (extra per-chunk
        # streams) must not change correctness -- only the draws.
        problem = linear_gaussian_problem(4.0)
        result = _rare(problem, include_mismatch=True, chunk_lanes=500)
        lo, hi = result.interval
        assert lo <= problem.p_fail <= hi

    def test_yield_interval_mirrors_failure_interval(self):
        result = _rare(linear_gaussian_problem(3.0))
        lo, hi = result.interval
        assert result.yield_interval == (1.0 - hi, 1.0 - lo)
        assert result.yield_estimate == 1.0 - result.p_fail


class TestBitReproducibility:
    """The exec determinism contract, extended to the rare estimator."""

    def _fingerprint(self, result: RareEventResult):
        return (result.p_fail, result.std_error, result.effective_samples,
                tuple(result.shift_sigma),
                tuple((level.threshold, level.acceptance,
                       level.failure_fraction, tuple(level.shift_sigma))
                      for level in result.levels))

    @pytest.mark.parametrize("backend,workers", [("serial", 0),
                                                 ("thread", 3),
                                                 ("process", 2)])
    def test_backends_bit_identical(self, backend, workers):
        problem = linear_gaussian_problem(3.0)
        reference = self._fingerprint(_rare(
            problem, n_per_level=400, n_final=600, chunk_lanes=128,
            include_mismatch=True))
        probe = self._fingerprint(_rare(
            problem, n_per_level=400, n_final=600, chunk_lanes=128,
            include_mismatch=True, backend=backend, workers=workers))
        assert probe == reference

    def test_repeat_runs_identical(self):
        problem = linear_gaussian_problem(3.5)
        a = _rare(problem, n_per_level=300, n_final=500)
        b = _rare(problem, n_per_level=300, n_final=500)
        assert self._fingerprint(a) == self._fingerprint(b)

    def test_chunk_geometry_irrelevant_without_mismatch(self):
        # Draws are central; chunking only splits evaluation, so with no
        # per-chunk mismatch streams the lane size cannot matter at all.
        problem = linear_gaussian_problem(3.0)
        a = _rare(problem, n_per_level=300, n_final=500, chunk_lanes=64)
        b = _rare(problem, n_per_level=300, n_final=500, chunk_lanes=4000)
        assert self._fingerprint(a) == self._fingerprint(b)


class TestDiagnostics:
    def test_ledger_accounts_every_simulation(self):
        result = _rare(linear_gaussian_problem(4.0), n_per_level=500,
                       n_final=800)
        assert result.total_simulations == \
            500 * result.n_levels + 800
        assert result.n_levels == len(result.levels)
        assert all(isinstance(level, RareLevel) for level in result.levels)
        assert [level.index for level in result.levels] == \
            list(range(result.n_levels))

    def test_acceptance_rates_near_level_quantile(self):
        result = _rare(linear_gaussian_problem(4.0), level_quantile=0.25)
        # Quantile thresholds put ~25 % of each level at/below them; the
        # final level (threshold clamped to 0) may accept more.
        for rate in result.acceptance_rates[:-1]:
            assert 0.2 <= rate <= 0.35
        assert result.levels[0].shift_sigma == pytest.approx(0.0)

    def test_shift_points_toward_failure_region(self):
        problem = linear_gaussian_problem(4.0)
        result = _rare(problem)
        direction = problem.failure_direction
        alignment = float(result.shift_sigma @ direction
                          / np.linalg.norm(result.shift_sigma))
        assert alignment > 0.9  # nearly parallel to the true direction

    def test_effective_samples_bounded(self):
        result = _rare(linear_gaussian_problem(3.0))
        assert 0.0 < result.effective_samples <= result.n_final

    def test_describe_mentions_key_figures(self):
        result = _rare(linear_gaussian_problem(3.0))
        text = result.describe()
        assert "p_fail" in text and "sigma" in text
        assert "splitting levels" in text
        assert f"{result.total_simulations} simulations" in text
        assert text.count("level ") >= result.n_levels

    def test_unconverged_walk_is_flagged(self):
        result = _rare(linear_gaussian_problem(6.0), max_levels=1,
                       n_per_level=300, n_final=300)
        assert not result.levels_converged
        assert "max_levels" in result.describe()

    def test_progress_reports_every_stage(self):
        stages = []
        problem = linear_gaussian_problem(3.0)
        estimate_yield_rare(
            problem.evaluator, problem.specs, problem.pdk,
            RareEventConfig(n_per_level=200, n_final=200, chunk_lanes=50,
                            include_mismatch=False),
            progress=lambda stage, done, total: stages.append(stage))
        assert any(stage.startswith("rare-level-") for stage in stages)
        assert "rare-final" in stages


@pytest.mark.statistical
class TestCrossEstimator:
    """Direct MC, importance sampling, and the rare-event estimator must
    agree (overlapping CIs) where all three are feasible."""

    @pytest.mark.parametrize("beta", [2.0, 2.5, 3.0])
    def test_three_estimators_overlap(self, beta):
        problem = linear_gaussian_problem(beta)

        population = monte_carlo(
            problem.evaluator, problem.pdk,
            MCConfig(n_samples=20000, seed=2008, include_mismatch=False,
                     chunk_lanes=4000))
        direct = estimate_yield(population, problem.specs,
                                confidence=0.999)
        direct_fail = (1.0 - direct.interval[1], 1.0 - direct.interval[0])

        importance = estimate_yield_importance(
            problem.evaluator, problem.specs, problem.pdk,
            ImportanceSamplingConfig(n_samples=3000, pilot_samples=1000,
                                     seed=2008, include_mismatch=False,
                                     confidence=0.999))
        importance_fail = (1.0 - importance.interval[1],
                           1.0 - importance.interval[0])

        rare = _rare(problem)

        # Each interval must hold the exact truth...
        assert direct_fail[0] <= problem.p_fail <= direct_fail[1]
        assert importance_fail[0] <= problem.p_fail <= importance_fail[1]
        assert rare.interval[0] <= problem.p_fail <= rare.interval[1]
        # ...and therefore pairwise overlap.
        assert intervals_overlap(direct_fail, rare.interval)
        assert intervals_overlap(importance_fail, rare.interval)
        assert intervals_overlap(direct_fail, importance_fail)


@pytest.mark.statistical
class TestProperties:
    """Hypothesis property tests for the rare-event invariants."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_backend_invariance_any_seed(self, seed):
        problem = linear_gaussian_problem(3.0)
        serial = _rare(problem, n_per_level=120, n_final=160,
                       chunk_lanes=48, seed=seed, include_mismatch=True)
        threaded = _rare(problem, n_per_level=120, n_final=160,
                         chunk_lanes=48, seed=seed, include_mismatch=True,
                         backend="thread", workers=3)
        assert serial.p_fail == threaded.p_fail
        assert serial.std_error == threaded.std_error
        np.testing.assert_array_equal(serial.shift_sigma,
                                      threaded.shift_sigma)

    @settings(max_examples=8, deadline=None)
    @given(beta=st.floats(min_value=1.5, max_value=3.0),
           gap=st.floats(min_value=1.0, max_value=2.0),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_p_fail_monotone_in_spec_threshold(self, beta, gap, seed):
        # Tightening the spec by >= 1 sigma multiplies the true failure
        # probability ~15x or more -- far beyond estimator noise at
        # these budgets, so the estimates must order correctly.
        loose = _rare(linear_gaussian_problem(beta + gap),
                      n_per_level=400, n_final=800, seed=seed)
        tight = _rare(linear_gaussian_problem(beta),
                      n_per_level=400, n_final=800, seed=seed)
        assert tight.p_fail > loose.p_fail

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           cap=st.integers(min_value=1, max_value=4))
    def test_level_walk_prefix_deterministic(self, seed, cap):
        # A max_levels cap must truncate the walk, never change it: the
        # capped run's ledger is an exact prefix of the uncapped run's.
        problem = linear_gaussian_problem(4.0)
        full = _rare(problem, n_per_level=150, n_final=150, seed=seed)
        capped = _rare(problem, n_per_level=150, n_final=150, seed=seed,
                       max_levels=cap)
        expected = min(cap, full.n_levels)
        assert capped.n_levels == expected
        for capped_level, full_level in zip(capped.levels, full.levels, strict=False):
            assert capped_level.threshold == full_level.threshold
            assert capped_level.acceptance == full_level.acceptance
            np.testing.assert_array_equal(capped_level.shift_sigma,
                                          full_level.shift_sigma)
