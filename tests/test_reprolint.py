"""Tests for the reprolint static invariant checker (tools.reprolint).

Coverage map (mirroring tests/test_lint.py for the netlist linter):

* per-rule positive/negative coverage from the
  ``tests/reprolint_fixtures`` corpus (every rule has a triggering and
  a passing snippet) plus an every-rule-covered meta-test;
* injected-violation acceptance checks: a naked ``np.random.normal``,
  a ``Workload`` field missing from ``config()`` and an unlocked
  ``self._entries`` write are each caught with the correct rule id and
  file:line;
* suppression and baseline mechanics (mandatory reason, unknown
  rules, locus matching);
* report/finding mechanics: exit codes, ordering, JSON rendering;
* the ``python -m tools.reprolint`` CLI (text, ``--json``,
  ``--list-rules``, ``--only``, ``--write-baseline``);
* the tier-1 regression: the live ``src/repro`` tree passes clean.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import (RULES, SEVERITIES, Finding, Report,  # noqa: E402
                             analyze, iter_rules, load_baseline,
                             parse_modules, rule)
from tools.reprolint.__main__ import main  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"

# ---------------------------------------------------------------------------
# corpus-driven per-rule coverage
# ---------------------------------------------------------------------------

#: fixture name -> rule id every finding in it must carry
BAD_FIXTURES = {
    "bad_rng": "rng-discipline",
    "bad_fingerprint_determinism": "fingerprint-determinism",
    "bad_fingerprint_completeness": "fingerprint-completeness",
    "bad_lock": "lock-discipline",
    "bad_telemetry": "telemetry-hygiene",
    "bad_error": "error-contract",
    "bad_suppression": "suppression-hygiene",
}

GOOD_FIXTURES = [
    "good_rng", "good_fingerprint_determinism",
    "good_fingerprint_completeness", "good_lock", "good_telemetry",
    "good_error", "good_suppression",
]


@pytest.mark.parametrize("name", sorted(BAD_FIXTURES))
def test_bad_fixture_triggers_its_rule(name):
    report = analyze([FIXTURES / f"{name}.py"])
    assert report.findings, f"{name} produced no findings"
    assert {f.rule for f in report.findings} == {BAD_FIXTURES[name]}
    for finding in report.findings:
        assert finding.path.endswith(f"{name}.py")
        assert finding.line > 0
        assert finding.severity == "error"


@pytest.mark.parametrize("name", GOOD_FIXTURES)
def test_good_fixture_is_clean(name):
    report = analyze([FIXTURES / f"{name}.py"])
    assert report.findings == [], report.render_text()
    assert report.exit_code() == 0


def test_every_rule_has_bad_and_good_coverage():
    assert set(BAD_FIXTURES.values()) == set(RULES)
    stems = {name.replace("bad_", "").replace("-", "_")
             for name in BAD_FIXTURES}
    good_stems = {name.replace("good_", "") for name in GOOD_FIXTURES}
    assert stems == good_stems


def test_live_src_tree_is_clean():
    report = analyze([REPO_ROOT / "src" / "repro"])
    assert report.files_scanned > 50
    assert report.ok(), report.render_text()
    assert len(report.rules_run) >= 6


# ---------------------------------------------------------------------------
# injected-violation acceptance checks
# ---------------------------------------------------------------------------

def _one_finding(tmp_path, source, rule_id, only=None):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    report = analyze([path], only=only)
    matches = [f for f in report.findings if f.rule == rule_id]
    assert matches, report.render_text()
    return matches


def test_injected_naked_np_random_normal(tmp_path):
    findings = _one_finding(tmp_path, (
        "import numpy as np\n"
        "\n"
        "\n"
        "def sample(n):\n"
        "    return np.random.normal(0.0, 1.0, size=n)\n"
    ), "rng-discipline")
    assert findings[0].line == 5
    assert findings[0].path.endswith("snippet.py")
    assert "np.random.normal" in findings[0].message


def test_injected_seedless_default_rng(tmp_path):
    findings = _one_finding(tmp_path, (
        "import numpy as np\n"
        "rng = np.random.default_rng()\n"
    ), "rng-discipline")
    assert findings[0].line == 2


def test_injected_workload_field_missing_from_config(tmp_path):
    findings = _one_finding(tmp_path, (
        "class Workload:\n"
        "    pass\n"
        "\n"
        "\n"
        "class W(Workload):\n"
        "    def __init__(self, seed, lanes):\n"
        "        self.seed = seed\n"
        "        self.lanes = lanes\n"
        "\n"
        "    def config(self):\n"
        "        return {'seed': self.seed}\n"
    ), "fingerprint-completeness")
    assert findings[0].line == 8
    assert findings[0].locus == "W.lanes"


def test_injected_unlocked_entries_write(tmp_path):
    findings = _one_finding(tmp_path, (
        "import threading\n"
        "\n"
        "\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._entries = {}\n"
        "\n"
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._entries[k] = v\n"
        "\n"
        "    def wipe(self):\n"
        "        self._entries = {}\n"
    ), "lock-discipline")
    assert findings[0].line == 14
    assert "_entries" in findings[0].message


def test_injected_wall_clock_in_config(tmp_path):
    findings = _one_finding(tmp_path, (
        "import time\n"
        "\n"
        "\n"
        "class W:\n"
        "    def config(self):\n"
        "        return {'at': time.time()}\n"
    ), "fingerprint-determinism")
    assert findings[0].line == 6


def test_import_aliases_are_resolved(tmp_path):
    # The violation hides behind both import styles.
    _one_finding(tmp_path, (
        "from numpy.random import normal\n"
        "x = normal(size=3)\n"
    ), "rng-discipline")
    _one_finding(tmp_path, (
        "import numpy.random as nr\n"
        "x = nr.uniform(size=3)\n"
    ), "rng-discipline")


def test_lock_held_private_helper_is_not_flagged(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Sink:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "\n"
        "    def emit(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n"
        "            if self._n > 10:\n"
        "                self._rotate()\n"
        "\n"
        "    def _rotate(self):\n"
        "        self._n = 0\n"
    )
    report = analyze([path], only=["lock-discipline"])
    assert report.findings == [], report.render_text()


def test_parse_error_becomes_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    report = analyze([path])
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert report.exit_code() == 1


# ---------------------------------------------------------------------------
# suppression and baseline mechanics
# ---------------------------------------------------------------------------

_VIOLATION = ("import numpy as np\n"
              "x = np.random.normal(size=2){comment}\n")


def test_reasoned_suppression_silences_and_is_counted(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(_VIOLATION.format(
        comment="  # reprolint: disable=rng-discipline -- known legacy"))
    report = analyze([path])
    assert report.findings == []
    assert report.suppressed == 1


def test_reasonless_suppression_does_not_silence(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(_VIOLATION.format(
        comment="  # reprolint: disable=rng-discipline"))
    report = analyze([path])
    rules_found = {f.rule for f in report.findings}
    # The violation still fires AND the lazy suppression is a finding.
    assert rules_found == {"rng-discipline", "suppression-hygiene"}


def test_standalone_suppression_comment_covers_next_line(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "import numpy as np\n"
        "# reprolint: disable=rng-discipline -- demo exemption\n"
        "x = np.random.normal(size=2)\n")
    report = analyze([path])
    assert report.findings == []
    assert report.suppressed == 1


def test_suppression_only_covers_named_rule(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(_VIOLATION.format(
        comment="  # reprolint: disable=error-contract -- wrong rule"))
    report = analyze([path])
    assert {f.rule for f in report.findings} == {"rng-discipline"}


def test_baseline_matches_on_rule_path_locus(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "class Workload:\n"
        "    pass\n"
        "\n"
        "\n"
        "class W(Workload):\n"
        "    def __init__(self, lanes):\n"
        "        self.lanes = lanes\n"
        "\n"
        "    def config(self):\n"
        "        return {}\n")
    entries = [{"rule": "fingerprint-completeness",
                "path": "snippet.py", "locus": "W.lanes"}]
    report = analyze([path], baseline_entries=entries)
    assert report.findings == []
    assert report.baselined == 1
    # A non-matching locus does not baseline the finding away.
    report = analyze([path], baseline_entries=[
        {"rule": "fingerprint-completeness", "path": "snippet.py",
         "locus": "W.other"}])
    assert len(report.findings) == 1


def test_load_baseline(tmp_path):
    target = tmp_path / "baseline.json"
    assert load_baseline(target) == []
    target.write_text(json.dumps(
        {"entries": [{"rule": "r", "path": "p", "locus": ""}]}))
    assert load_baseline(target) == [{"rule": "r", "path": "p", "locus": ""}]
    target.write_text(json.dumps({"entries": "nope"}))
    with pytest.raises(ValueError):
        load_baseline(target)


def test_shipped_baseline_is_loadable():
    entries = load_baseline(
        REPO_ROOT / "tools" / "reprolint" / "baseline.json")
    assert isinstance(entries, list)


# ---------------------------------------------------------------------------
# registry / report / finding mechanics
# ---------------------------------------------------------------------------

def test_rule_registry_contents():
    assert len(RULES) >= 6
    for rule_id, entry in RULES.items():
        assert entry.rule_id == rule_id
        assert entry.severity in SEVERITIES
        assert entry.summary


def test_rule_registration_guards():
    with pytest.raises(ValueError, match="severity"):
        rule("tmp-bad-severity", "fatal", "x")
    with pytest.raises(ValueError, match="duplicate"):
        rule("rng-discipline", "error", "x")(lambda ctx: iter(()))


def test_iter_rules_only_selection():
    selected = iter_rules(["rng-discipline", "error-contract"])
    assert {r.rule_id for r in selected} == {"rng-discipline",
                                            "error-contract"}
    with pytest.raises(ValueError, match="unknown"):
        iter_rules(["no-such-rule"])


def test_only_selection_in_analyze(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(
        "import numpy as np\n"
        "x = np.random.normal(size=2)\n"
        "try:\n"
        "    pass\n"
        "except:\n"
        "    pass\n")
    report = analyze([path], only=["error-contract"])
    assert {f.rule for f in report.findings} == {"error-contract"}


def test_finding_validation_and_render():
    with pytest.raises(ValueError, match="severity"):
        Finding("r", "catastrophic", "m")
    finding = Finding("r", "error", "broken", path="a.py", line=3,
                      hint="fix it")
    text = finding.render()
    assert "a.py:3: error[r]: broken" in text
    assert "hint: fix it" in text
    assert finding.baseline_entry() == {"rule": "r", "path": "a.py",
                                        "locus": ""}


def test_report_ordering_counts_and_exit_codes():
    report = Report(source="x")
    report.add(Finding("b", "warning", "w", path="b.py", line=9))
    report.add(Finding("a", "error", "e", path="a.py", line=2))
    ordered = report.sorted_findings()
    assert [f.path for f in ordered] == ["a.py", "b.py"]
    assert report.count("error") == 1 and report.count("warning") == 1
    assert report.exit_code() == 1
    warn_only = Report(findings=[Finding("a", "warning", "w")])
    assert warn_only.exit_code() == 0
    assert warn_only.exit_code(strict=True) == 1
    assert Report().exit_code(strict=True) == 0


def test_report_json_roundtrip(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text("import numpy as np\nx = np.random.normal(size=2)\n")
    report = analyze([path])
    payload = json.loads(report.render_json())
    assert payload["ok"] is False
    assert payload["counts"]["error"] == 1
    assert payload["findings"][0]["rule"] == "rng-discipline"
    assert payload["files_scanned"] == 1


def test_parse_modules_builds_alias_table(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text("import numpy as np\nfrom json import dumps\n")
    modules, errors = parse_modules([path])
    assert errors == []
    assert modules[0].aliases["np"] == "numpy"
    assert modules[0].aliases["dumps"] == "json.dumps"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_clean_and_failing(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n")
    assert main([str(good)]) == 0
    assert "clean" in capsys.readouterr().out
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.normal(size=2)\n")
    assert main([str(bad)]) == 1
    assert "rng-discipline" in capsys.readouterr().out


def test_cli_json_mode(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.normal(size=2)\n")
    assert main([str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_unknown_only_is_usage_error(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n")
    assert main([str(good), "--only", "no-such-rule"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "class Workload:\n"
        "    pass\n"
        "\n"
        "\n"
        "class W(Workload):\n"
        "    def __init__(self, lanes):\n"
        "        self.lanes = lanes\n"
        "\n"
        "    def config(self):\n"
        "        return {}\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
