"""Service-layer tests: the in-process job queue and the file-spool
daemon.

The tentpole gates covered here: cache-first execution (a second
identical submission is a hit), single-flight deduplication of
concurrent identical jobs, cooperative cancellation of running work,
failed-job error capture, and the daemon's full request -> status ->
result -> cancel -> stop round trip.
"""

import json
import threading
import time
from typing import ClassVar

import pytest

from repro.cache import ResultCache
from repro.errors import JobCancelled, WorkloadError
from repro.mc import MCConfig
from repro.measure.specs import Spec, SpecSet
from repro.process import C35
from repro.service import (JOB_STATES, JobQueue, job_statuses, read_status,
                           request_cancel, request_stats, request_stop,
                           serve, submit_request, workload_from_request)
from repro.workload import StreamingYieldWorkload, Workload

SPECS = SpecSet([Spec("metric", "ge", 10.0)])

DESIGN = {"w1": 3e-05, "l1": 1e-06, "w2": 6e-05, "l2": 1e-06,
          "w3": 1e-05, "l3": 2e-06, "w4": 2e-05, "l4": 2e-06}

LINT_REQUEST = {"kind": "lint",
                "netlist": "V1 in 0 1\nR1 in 0 1k\n.end\n"}


def metric_evaluator(sample):
    return {"metric": 10.0 + 100.0 * sample.dvto_n}


def yield_workload(seed=5, n_samples=128):
    return StreamingYieldWorkload(
        metric_evaluator, C35, SPECS,
        MCConfig(n_samples=n_samples, seed=seed, chunk_lanes=32))


class SlowWorkload(Workload):
    """Ticks through rounds with a progress boundary after each --
    cancellable, never finishing fast."""

    kind: ClassVar[str] = "slow"
    cacheable: ClassVar[bool] = False

    def __init__(self, rounds=200, tick=0.02):
        self.rounds = rounds
        self.tick = tick

    def config(self):
        return {"rounds": self.rounds}

    def _execute(self, *, checkpoint, progress):
        for done in range(self.rounds):
            time.sleep(self.tick)
            if progress is not None:
                progress(done + 1, self.rounds)
        return self._result(meta={"rounds": self.rounds})


class FailingWorkload(Workload):
    kind: ClassVar[str] = "failing"
    cacheable: ClassVar[bool] = False

    def config(self):
        return {}

    def _execute(self, *, checkpoint, progress):
        raise ValueError("numerics exploded")


class TestJobQueue:
    def test_submit_result_roundtrip(self):
        with JobQueue(workers=2) as jobs:
            job_id = jobs.submit(yield_workload())
            result = jobs.result(job_id, timeout=30)
            estimate, streaming = result.value
            assert estimate.total == 128
            assert streaming is not None
            status = jobs.status(job_id)
            assert status["state"] == "done"
            assert status["kind"] == "yield-streaming"
            assert status["meta"]["samples_done"] == 128
            assert status["progress"] == [128, 128]

    def test_cache_hit_on_second_identical_submit(self, tmp_path):
        cache = ResultCache(tmp_path)
        with JobQueue(workers=1, cache=cache) as jobs:
            first = jobs.result(jobs.submit(yield_workload()), timeout=30)
            second = jobs.result(jobs.submit(yield_workload()), timeout=30)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.value[0] == first.value[0]
        assert cache.stats.stores == 1

    def test_single_flight_dedup(self, tmp_path):
        # Concurrent identical submissions: one computes, the rest wait
        # and serve the stored result -- never N independent runs.
        cache = ResultCache(tmp_path)
        with JobQueue(workers=4, cache=cache) as jobs:
            ids = [jobs.submit(yield_workload(seed=9, n_samples=256))
                   for _ in range(4)]
            results = [jobs.result(job_id, timeout=60) for job_id in ids]
        assert cache.stats.stores == 1
        assert sum(result.cache_hit for result in results) == 3
        estimates = [result.value[0] for result in results]
        assert all(estimate == estimates[0] for estimate in estimates)

    def test_cancel_running_job(self):
        with JobQueue(workers=1) as jobs:
            job_id = jobs.submit(SlowWorkload())
            deadline = time.monotonic() + 5
            while jobs.status(job_id)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert jobs.cancel(job_id)
            with pytest.raises(JobCancelled):
                jobs.result(job_id, timeout=10)
            assert jobs.status(job_id)["state"] == "cancelled"

    def test_cancel_queued_job_never_runs(self):
        with JobQueue(workers=1) as jobs:
            blocker = jobs.submit(SlowWorkload(rounds=20))
            queued = jobs.submit(SlowWorkload())
            assert jobs.cancel(queued)
            with pytest.raises(JobCancelled):
                jobs.result(queued, timeout=10)
            jobs.cancel(blocker)

    def test_cancel_finished_job_is_false(self):
        with JobQueue(workers=1) as jobs:
            job_id = jobs.submit(yield_workload())
            jobs.result(job_id, timeout=30)
            assert not jobs.cancel(job_id)

    def test_failed_job_captures_traceback(self):
        with JobQueue(workers=1) as jobs:
            job_id = jobs.submit(FailingWorkload())
            with pytest.raises(WorkloadError, match="numerics exploded"):
                jobs.result(job_id, timeout=10)
            status = jobs.status(job_id)
            assert status["state"] == "failed"
            assert "ValueError" in status["error"]

    def test_duplicate_and_unknown_ids_rejected(self):
        with JobQueue(workers=1) as jobs:
            jobs.submit(yield_workload(), job_id="mine")
            with pytest.raises(WorkloadError, match="duplicate"):
                jobs.submit(yield_workload(), job_id="mine")
            with pytest.raises(WorkloadError, match="unknown"):
                jobs.status("nope")

    def test_counts_and_states(self):
        with JobQueue(workers=1) as jobs:
            jobs.result(jobs.submit(yield_workload()), timeout=30)
            counts = jobs.counts()
        assert set(counts) == set(JOB_STATES)
        assert counts["done"] == 1

    def test_submit_after_shutdown_rejected(self):
        jobs = JobQueue(workers=1)
        jobs.shutdown()
        with pytest.raises(WorkloadError, match="shut down"):
            jobs.submit(yield_workload())

    def test_workers_validation(self):
        with pytest.raises(WorkloadError):
            JobQueue(workers=0)

    def test_checkpoint_survives_cancel_for_resume(self, tmp_path):
        # The per-job checkpoint is named by content-address: the
        # resubmitted identical job resumes the cancelled one's work.
        with JobQueue(workers=1, checkpoint_dir=tmp_path) as jobs:
            workload = yield_workload(seed=3, n_samples=100000)
            job_id = jobs.submit(workload)
            deadline = time.monotonic() + 20
            while jobs.status(job_id).get("progress", [0])[0] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            jobs.cancel(job_id)
            with pytest.raises(JobCancelled):
                jobs.result(job_id, timeout=20)
        assert (tmp_path / f"{workload.key()}.npz").exists()


class TestRequests:
    def test_estimate_request_builds_workload(self):
        workload = workload_from_request(
            {"kind": "estimate", "design": DESIGN, "n_samples": 64})
        assert workload.kind == "yield-streaming"

    def test_identical_requests_share_a_key(self):
        a = workload_from_request({"kind": "estimate", "design": DESIGN})
        b = workload_from_request(
            {"kind": "estimate", "design": dict(DESIGN)})
        assert a.key() == b.key()

    def test_lint_request(self):
        workload = workload_from_request(LINT_REQUEST)
        assert workload.kind == "lint"
        assert workload.run().meta["ok"] is True

    def test_rejections(self):
        for request, match in (
                ("not a dict", "JSON object"),
                ({"kind": "nope"}, "unknown request kind"),
                ({"kind": "estimate"}, "design"),
                ({"kind": "estimate", "design": DESIGN,
                  "backend": "thread:2"}, "unknown estimate field"),
                ({"kind": "lint"}, "netlist")):
            with pytest.raises(WorkloadError, match=match):
                workload_from_request(request)

    def test_rare_request_builds_workload(self):
        workload = workload_from_request(
            {"kind": "rare", "design": DESIGN, "n_per_level": 64,
             "n_final": 64, "max_levels": 2, "chunk_lanes": 32})
        assert workload.kind == "yield-rare"
        assert workload.cacheable

    def test_corners_request_builds_workload(self):
        workload = workload_from_request(
            {"kind": "corners", "design": DESIGN, "corners": "tm,ws",
             "vdds": "3.3", "temps": "27"})
        assert workload.kind == "corner-sweep"
        assert workload.grid.size == 2

    def test_surrogate_request_builds_workload(self):
        workload = workload_from_request(
            {"kind": "surrogate", "design": DESIGN, "n_train": 32,
             "surrogate_kind": "linear"})
        assert workload.kind == "surrogate-train"
        assert workload.surrogate_kind == "linear"

    @pytest.mark.parametrize("request_dict", [
        {"kind": "rare", "design": None, "n_per_level": 64, "n_final": 64,
         "max_levels": 2, "chunk_lanes": 32},
        {"kind": "corners", "design": None, "corners": "tm", "vdds": "3.3",
         "temps": "27"},
        {"kind": "surrogate", "design": None, "n_train": 32},
    ])
    def test_new_kinds_share_cache_keys(self, request_dict):
        # Identity: same design + config from different request objects
        # must address one cache entry; a changed design must not.
        request_dict = dict(request_dict, design=DESIGN)
        a = workload_from_request(request_dict)
        b = workload_from_request(
            dict(request_dict, design=dict(DESIGN)))
        assert a.key() == b.key()
        other = dict(DESIGN, w1=DESIGN["w1"] * 1.5)
        c = workload_from_request(dict(request_dict, design=other))
        assert c.key() != a.key()

    def test_new_kind_rejections(self):
        for request, match in (
                ({"kind": "rare"}, "design"),
                ({"kind": "rare", "design": DESIGN, "bogus": 1},
                 "unknown rare field"),
                ({"kind": "rare", "design": DESIGN, "n_final": 0},
                 "n_per_level and n_final"),
                ({"kind": "corners", "design": DESIGN,
                  "corners": "nope"}, "unknown corner"),
                ({"kind": "corners", "design": DESIGN, "vdds": "abc"},
                 "bad PVT grid"),
                ({"kind": "surrogate", "design": DESIGN,
                  "surrogate_kind": "cubic"}, "unknown surrogate kind"),
                ({"kind": "surrogate", "design": DESIGN, "n_train": 1},
                 "n_train")):
            with pytest.raises(WorkloadError, match=match):
                workload_from_request(request)

    def test_rare_request_round_trips_through_cache(self, tmp_path):
        from repro.cache import ResultCache
        request = {"kind": "rare", "design": DESIGN, "n_per_level": 48,
                   "n_final": 48, "max_levels": 2, "chunk_lanes": 24,
                   "include_mismatch": False}
        cache = ResultCache(tmp_path)
        fresh = workload_from_request(request).run_cached(cache)
        hit = workload_from_request(dict(request)).run_cached(cache)
        assert fresh.cache_hit is False and hit.cache_hit is True
        assert hit.value.p_fail == fresh.value.p_fail
        assert hit.value.total_simulations == fresh.value.total_simulations
        assert hit.value.describe() == fresh.value.describe()


class TestDaemon:
    def serve_in_thread(self, root, **options):
        options.setdefault("workers", 2)
        options.setdefault("poll", 0.01)
        outcome = {}

        def run():
            outcome["processed"] = serve(root, **options)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread, outcome

    def wait_for_state(self, root, job_id, states, timeout=30):
        deadline = time.monotonic() + timeout
        while True:
            try:
                status = read_status(root, job_id)
            except WorkloadError:
                status = None  # daemon has not published it yet
            if status is not None and status["state"] in states:
                return status
            assert time.monotonic() < deadline, \
                f"job {job_id} stuck in {status and status['state']}"
            time.sleep(0.02)

    def test_full_round_trip(self, tmp_path):
        thread, outcome = self.serve_in_thread(tmp_path)
        first = submit_request(tmp_path, LINT_REQUEST)
        status = self.wait_for_state(tmp_path, first, ("done",))
        assert status["meta"]["ok"] is True
        assert not status["cache_hit"]
        second = submit_request(tmp_path, dict(LINT_REQUEST))
        status = self.wait_for_state(tmp_path, second, ("done",))
        assert status["cache_hit"]
        assert status["key"] == read_status(tmp_path, first)["key"]
        request_stop(tmp_path)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome["processed"] == 2
        assert not (tmp_path / "stop").exists()  # consumed for next serve

    def test_cancel_running_job(self, tmp_path):
        thread, _ = self.serve_in_thread(tmp_path)
        job_id = submit_request(
            tmp_path, {"kind": "estimate", "design": DESIGN,
                       "n_samples": 100000, "chunk_lanes": 64})
        self.wait_for_state(tmp_path, job_id, ("running",))
        request_cancel(tmp_path, job_id)
        status = self.wait_for_state(tmp_path, job_id, ("cancelled",))
        assert status["state"] == "cancelled"
        request_stop(tmp_path)
        thread.join(timeout=30)

    def test_stats_round_trip(self, tmp_path):
        thread, _ = self.serve_in_thread(tmp_path, sample_every=0.02)
        job_id = submit_request(tmp_path, LINT_REQUEST)
        self.wait_for_state(tmp_path, job_id, ("done",))
        time.sleep(0.1)  # at least two gauge-sample intervals
        payload = request_stats(tmp_path, timeout=30)
        # Live cache figures: the lint job was a miss then a store.
        assert payload["cache"]["misses"] >= 1
        assert payload["cache"]["stores"] >= 1
        assert payload["cache"]["entries"] >= 1
        assert payload["jobs"]["done"] >= 1
        # The registry snapshot mirrors the cache counters...
        counters = payload["metrics"]["counters"]
        assert counters.get("cache.misses", 0) >= 1
        assert counters.get("jobs.done", 0) >= 1
        # ...and carries a timestamped cache-size gauge history.
        samples = payload["metrics"]["gauges"]["cache.bytes"]["samples"]
        assert len(samples) >= 2
        assert all(t > 0 and value >= 0 for t, value in samples)
        # The request/response files are consumed.
        assert list((tmp_path / "stats").iterdir()) == []
        request_stop(tmp_path)
        thread.join(timeout=30)

    def test_stats_times_out_without_daemon(self, tmp_path):
        with pytest.raises(WorkloadError, match="no stats response"):
            request_stats(tmp_path, timeout=0.2, poll=0.02)

    def test_bad_queue_file_becomes_failed_status(self, tmp_path):
        # A request written behind submit_request's back (no client-side
        # validation) must fail visibly, not crash the daemon.
        (tmp_path / "queue").mkdir(parents=True)
        (tmp_path / "queue" / "job-bad.json").write_text(
            json.dumps({"kind": "nope"}))
        thread, outcome = self.serve_in_thread(tmp_path)
        status = self.wait_for_state(tmp_path, "job-bad", ("failed",))
        assert "unknown request kind" in status["error"]
        request_stop(tmp_path)
        thread.join(timeout=30)

    def test_client_side_validation(self, tmp_path):
        with pytest.raises(WorkloadError, match="design"):
            submit_request(tmp_path, {"kind": "estimate"})
        assert list((tmp_path / "queue").glob("*")) == [] \
            if (tmp_path / "queue").is_dir() else True

    def test_idle_exit(self, tmp_path):
        processed = serve(tmp_path, idle_exit=0.05, poll=0.01)
        assert processed == 0

    def test_job_statuses_listing(self, tmp_path):
        thread, _ = self.serve_in_thread(tmp_path)
        first = submit_request(tmp_path, LINT_REQUEST)
        self.wait_for_state(tmp_path, first, ("done",))
        second = submit_request(tmp_path, dict(LINT_REQUEST))
        self.wait_for_state(tmp_path, second, ("done",))
        listed = job_statuses(tmp_path)
        assert [status["id"] for status in listed] == [first, second]
        request_stop(tmp_path)
        thread.join(timeout=30)

    def test_unknown_job_id(self, tmp_path):
        with pytest.raises(WorkloadError, match="unknown job"):
            read_status(tmp_path, "job-missing")
