"""Specification object tests."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.measure import Spec, SpecSet


class TestSpec:
    def test_ge_margin_and_satisfied(self):
        spec = Spec("gain_db", "ge", 50.0, "dB")
        np.testing.assert_allclose(spec.margin([49.0, 50.0, 51.0]),
                                   [-1.0, 0.0, 1.0])
        np.testing.assert_array_equal(spec.satisfied([49.0, 50.0, 51.0]),
                                      [False, True, True])

    def test_le_margin(self):
        spec = Spec("ripple_db", "le", 1.0, "dB")
        np.testing.assert_allclose(spec.margin([0.5, 1.5]), [0.5, -0.5])

    def test_nan_never_passes(self):
        spec = Spec("gain_db", "ge", 50.0)
        assert spec.margin([np.nan])[0] == -np.inf
        assert not spec.satisfied([np.nan])[0]

    def test_invalid_kind(self):
        with pytest.raises(SpecificationError):
            Spec("x", "gt", 1.0)

    def test_infinite_limit_rejected(self):
        with pytest.raises(SpecificationError):
            Spec("x", "ge", np.inf)

    def test_describe(self):
        assert Spec("gain_db", "ge", 50.0, "dB").describe() == \
            "gain_db >= 50 dB"
        assert "<=" in Spec("r", "le", 1.0).describe()

    def test_label_used_in_describe(self):
        spec = Spec("pm_deg", "ge", 74.0, "deg", label="phase margin")
        assert "phase margin" in spec.describe()

    def test_tightened(self):
        spec = Spec("gain_db", "ge", 50.0, "dB")
        tighter = spec.tightened(50.26)
        assert tighter.limit == 50.26
        assert tighter.kind == "ge"
        assert spec.limit == 50.0  # original untouched


class TestSpecSet:
    def make(self):
        return SpecSet([Spec("gain_db", "ge", 50.0, "dB"),
                        Spec("pm_deg", "ge", 74.0, "deg")])

    def test_pass_mask_all_specs(self):
        specs = self.make()
        perf = {"gain_db": np.array([51.0, 51.0, 49.0]),
                "pm_deg": np.array([75.0, 73.0, 75.0])}
        np.testing.assert_array_equal(specs.pass_mask(perf),
                                      [True, False, False])

    def test_yield_fraction(self):
        specs = self.make()
        perf = {"gain_db": np.array([51.0, 51.0, 49.0, 52.0]),
                "pm_deg": np.array([75.0, 73.0, 75.0, 80.0])}
        assert specs.yield_fraction(perf) == pytest.approx(0.5)

    def test_missing_performance_key(self):
        specs = self.make()
        with pytest.raises(SpecificationError, match="lacks"):
            specs.pass_mask({"gain_db": np.array([51.0])})

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate"):
            SpecSet([Spec("a", "ge", 1.0), Spec("a", "le", 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            SpecSet([])

    def test_getitem(self):
        specs = self.make()
        assert specs["gain_db"].limit == 50.0
        with pytest.raises(SpecificationError):
            specs["nope"]

    def test_worst_margins(self):
        specs = self.make()
        perf = {"gain_db": np.array([51.0, 55.0]),
                "pm_deg": np.array([80.0, 73.0])}
        worst = specs.worst_margins(perf)
        assert worst["gain_db"] == pytest.approx(1.0)
        assert worst["pm_deg"] == pytest.approx(-1.0)

    def test_names_and_iteration(self):
        specs = self.make()
        assert specs.names == ("gain_db", "pm_deg")
        assert len(list(specs)) == 2

    def test_describe_joins(self):
        text = self.make().describe()
        assert "gain_db" in text and "pm_deg" in text
