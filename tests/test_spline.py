"""Interpolation kernel tests: exactness, continuity, extrapolation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtrapolationError, TableModelError
from repro.tablemodel import (LinearInterpolator, NaturalCubicSpline,
                              QuadraticSpline, make_interpolator)


def knots(n=9, lo=0.0, hi=4.0):
    return np.linspace(lo, hi, n)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(TableModelError):
            LinearInterpolator([0, 1], [0, 1, 2])

    def test_too_few_points(self):
        with pytest.raises(TableModelError):
            NaturalCubicSpline([0.0], [1.0])

    def test_non_monotone_knots(self):
        with pytest.raises(TableModelError, match="increasing"):
            NaturalCubicSpline([0, 2, 1], [0, 1, 2])

    def test_nonfinite_rejected(self):
        with pytest.raises(TableModelError):
            LinearInterpolator([0, np.nan], [0, 1])

    def test_unknown_degree(self):
        with pytest.raises(TableModelError, match="degree"):
            make_interpolator("4", [0, 1], [0, 1])

    def test_unknown_extrapolation_mode(self):
        spline = LinearInterpolator([0, 1], [0, 1])
        with pytest.raises(TableModelError, match="extrapolation"):
            spline(0.5, extrapolation="X")


class TestExactness:
    """Each kernel must reproduce polynomials of its own degree."""

    @given(a=st.floats(-3, 3), b=st.floats(-3, 3))
    def test_linear_reproduces_lines(self, a, b):
        x = knots()
        kernel = LinearInterpolator(x, a * x + b)
        q = np.linspace(0, 4, 37)
        np.testing.assert_allclose(kernel(q), a * q + b, atol=1e-9)

    @given(a=st.floats(-2, 2), b=st.floats(-2, 2))
    def test_quadratic_reproduces_quadratics(self, a, b):
        x = knots()
        y = a * x ** 2 + b * x
        kernel = QuadraticSpline(x, y)
        q = np.linspace(0, 4, 23)
        np.testing.assert_allclose(kernel(q), a * q ** 2 + b * q,
                                   atol=1e-7 * (1 + abs(a) + abs(b)))

    def test_cubic_reproduces_lines_exactly(self):
        # Natural end conditions are exact for straight lines.
        x = knots()
        kernel = NaturalCubicSpline(x, 2 * x - 1)
        q = np.linspace(0, 4, 23)
        np.testing.assert_allclose(kernel(q), 2 * q - 1, atol=1e-10)

    def test_all_kernels_interpolate_knots(self):
        x = knots()
        y = np.sin(x)
        for degree in ("1", "2", "3"):
            kernel = make_interpolator(degree, x, y)
            np.testing.assert_allclose(kernel(x), y, atol=1e-12,
                                       err_msg=f"degree {degree}")

    def test_cubic_beats_linear_on_smooth_data(self):
        x = knots(12, 0, np.pi * 2)
        y = np.sin(x)
        q = np.linspace(0, 2 * np.pi, 200)
        err_linear = np.max(np.abs(LinearInterpolator(x, y)(q) - np.sin(q)))
        err_cubic = np.max(np.abs(NaturalCubicSpline(x, y)(q) - np.sin(q)))
        assert err_cubic < err_linear / 3


class TestContinuity:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=4, max_size=12))
    def test_cubic_first_derivative_continuous(self, values):
        x = np.arange(len(values), dtype=float)
        spline = NaturalCubicSpline(x, values)
        h = 1e-7
        for xk in x[1:-1]:
            left = (spline(xk) - spline(xk - h)) / h
            right = (spline(xk + h) - spline(xk)) / h
            scale = 1.0 + max(abs(v) for v in values)
            assert abs(left - right) < 1e-4 * scale

    def test_cubic_natural_end_conditions(self):
        x = knots()
        spline = NaturalCubicSpline(x, np.cos(x))
        h = 1e-4
        # One-sided second-difference stencils at each boundary ~ 0,
        # versus O(1) curvature in the interior.
        d2_left = (spline(x[0]) - 2 * spline(x[0] + h)
                   + spline(x[0] + 2 * h)) / h ** 2
        d2_right = (spline(x[-1] - 2 * h) - 2 * spline(x[-1] - h)
                    + spline(x[-1])) / h ** 2
        assert abs(d2_left) < 0.05
        assert abs(d2_right) < 0.05
        d2_mid = (spline(2.0 - h) - 2 * spline(2.0) + spline(2.0 + h)) / h ** 2
        assert abs(d2_mid) > 0.2

    def test_derivative_method_matches_fd(self):
        x = knots()
        spline = NaturalCubicSpline(x, np.sin(x))
        q = np.linspace(0.2, 3.8, 11)
        h = 1e-6
        fd = (spline(q + h) - spline(q - h)) / (2 * h)
        np.testing.assert_allclose(spline.derivative(q), fd, atol=1e-5)


class TestExtrapolation:
    def make(self):
        return NaturalCubicSpline([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])

    def test_error_mode_raises(self):
        spline = self.make()
        with pytest.raises(ExtrapolationError):
            spline(2.5, extrapolation="E")
        with pytest.raises(ExtrapolationError):
            spline(-0.1, extrapolation="E")

    def test_error_mode_tolerates_fp_noise_at_boundary(self):
        spline = self.make()
        assert spline(2.0 + 1e-13, extrapolation="E") == pytest.approx(0.0,
                                                                       abs=1e-9)

    def test_clamp_mode(self):
        spline = self.make()
        assert spline(5.0, extrapolation="C") == pytest.approx(spline(2.0))
        assert spline(-5.0, extrapolation="C") == pytest.approx(spline(0.0))

    def test_linear_mode_extends_with_boundary_slope(self):
        spline = LinearInterpolator([0.0, 1.0], [0.0, 2.0])
        assert spline(2.0, extrapolation="L") == pytest.approx(4.0)
        assert spline(-1.0, extrapolation="L") == pytest.approx(-2.0)

    def test_scalar_in_scalar_out(self):
        spline = self.make()
        assert np.isscalar(float(spline(0.5)))
        assert spline(np.array([0.5, 1.5])).shape == (2,)
