"""Streaming Monte-Carlo subsystem tests.

Covers the mergeable accumulators (Welford moments, quantile sketches),
the shard-merge correctness contract (streaming == batch on identical
populations, bit-identical across execution backends and across a
checkpoint/resume split), adaptive stopping, and checkpoint/resume.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.mc import (AdaptiveStop, MCConfig, P2Quantile, QuantileSketch,
                      StreamingAccumulator, StreamingMoments, YieldCounter,
                      cpk, monte_carlo, monte_carlo_streaming, summarize)
from repro.measure.specs import Spec, SpecSet
from repro.process import C35
from repro.yieldmodel import estimate_yield, estimate_yield_streaming
from statcheck import normal_quantile_halfwidth


def metric_evaluator(sample):
    """Deterministic function of the die parameters (no simulation)."""
    return {"metric": 10.0 + 100.0 * sample.dvto_n,
            "other": sample.kp_scale_n}


def accumulator_states(result, name="metric"):
    accumulator = result.accumulators[name]
    states = [accumulator.moments.state()]
    states.extend(accumulator.sketch.state().values())
    return states


class TestStreamingMoments:
    def test_matches_batch_mean_std(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, 10007)
        moments = StreamingMoments()
        for chunk in np.array_split(data, 13):
            moments.update(chunk)
        assert moments.n == data.size
        assert moments.mean == pytest.approx(np.mean(data), rel=1e-12)
        assert moments.std == pytest.approx(np.std(data, ddof=1), rel=1e-12)
        assert moments.minimum == np.min(data)
        assert moments.maximum == np.max(data)

    def test_merge_is_exact(self):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.normal(size=500), rng.normal(5.0, 3.0, 700)
        merged = StreamingMoments().update(a_data).merge(
            StreamingMoments().update(b_data))
        whole = StreamingMoments().update(np.concatenate([a_data, b_data]))
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.std == pytest.approx(whole.std, rel=1e-12)

    def test_merge_with_empty_is_identity(self):
        moments = StreamingMoments().update([1.0, 2.0, 3.0])
        before = moments.state().copy()
        moments.merge(StreamingMoments())
        np.testing.assert_array_equal(moments.state(), before)

    def test_std_needs_two_samples(self):
        moments = StreamingMoments().update([1.0])
        with pytest.raises(ValueError, match="at least two"):
            moments.std

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            StreamingMoments().update([1.0, np.nan])

    def test_state_roundtrip(self):
        moments = StreamingMoments().update([1.0, 4.0, -2.0])
        clone = StreamingMoments.from_state(moments.state())
        np.testing.assert_array_equal(clone.state(), moments.state())


class TestP2Quantile:
    def test_small_stream_is_exact(self):
        p2 = P2Quantile(0.5).update([3.0, 1.0, 2.0])
        assert p2.value() == 2.0

    def test_converges_on_normal_stream(self):
        # The P^2 marker error must stay below one sampling half-width
        # of the corresponding exact quantile at this stream length --
        # the scale at which the approximation is statistically free.
        rng = np.random.default_rng(2)
        data = rng.normal(0.0, 1.0, 20000)
        for q in (0.25, 0.5, 0.9):
            estimate = P2Quantile(q).update(data).value()
            assert estimate == pytest.approx(
                np.quantile(data, q),
                abs=normal_quantile_halfwidth(q, len(data)))

    def test_counts_samples(self):
        assert P2Quantile(0.5).update(np.arange(100.0)).n == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError, match="NaN"):
            P2Quantile(0.5).update([np.nan])
        with pytest.raises(ValueError, match="no samples"):
            P2Quantile(0.5).value()


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=300)
        sketch = QuantileSketch(512)
        for chunk in np.array_split(data, 7):
            sketch.update(chunk)
        assert not sketch.compacted
        for q in (0.01, 0.5, 0.99):
            assert sketch.quantile(q) == np.quantile(data, q)

    def test_merge_exact_below_capacity(self):
        rng = np.random.default_rng(4)
        a_data, b_data = rng.normal(size=100), rng.normal(2.0, 1.0, 150)
        merged = QuantileSketch(512).update(a_data).merge(
            QuantileSketch(512).update(b_data))
        whole = np.concatenate([a_data, b_data])
        assert merged.quantile(0.5) == np.quantile(whole, 0.5)

    def test_bounded_memory_and_approximate_beyond_capacity(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=50000)
        sketch = QuantileSketch(256)
        for chunk in np.array_split(data, 100):
            sketch.update(chunk)
        assert sketch.compacted
        assert sketch.state()["values"].size <= 256
        assert sketch.n == pytest.approx(data.size)
        for q in (0.1, 0.5, 0.9):
            assert sketch.quantile(q) == pytest.approx(
                np.quantile(data, q), abs=0.05)

    def test_deterministic_compaction(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=5000)
        runs = []
        for _ in range(2):
            sketch = QuantileSketch(64)
            for chunk in np.array_split(data, 50):
                sketch.update(chunk)
            runs.append(sketch.state())
        np.testing.assert_array_equal(runs[0]["values"], runs[1]["values"])
        np.testing.assert_array_equal(runs[0]["weights"], runs[1]["weights"])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(4)


class TestShardMergeAgainstBatch:
    """Satellite gate: merged streaming accumulators must agree with the
    batch ``summarize``/``cpk`` reductions on identical populations."""

    def test_summary_matches_summarize(self):
        rng = np.random.default_rng(7)
        data = rng.normal(50.0, 4.0, 1200)
        accumulator = StreamingAccumulator()
        for chunk in np.array_split(data, 9):
            accumulator.update(chunk)
        streaming, batch = accumulator.summary(), summarize(data)
        assert streaming.n == batch.n
        assert streaming.mean == pytest.approx(batch.mean, rel=1e-12)
        assert streaming.std == pytest.approx(batch.std, rel=1e-12)
        assert streaming.minimum == batch.minimum
        assert streaming.maximum == batch.maximum
        # Exact below the sketch capacity.
        assert streaming.median == batch.median
        assert streaming.q01 == batch.q01
        assert streaming.q99 == batch.q99

    def test_sharded_merge_matches_summarize(self):
        rng = np.random.default_rng(8)
        data = rng.normal(-3.0, 0.5, 900)
        shards = [StreamingAccumulator().update(chunk)
                  for chunk in np.array_split(data, 6)]
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        batch = summarize(data)
        assert merged.summary().mean == pytest.approx(batch.mean, rel=1e-12)
        assert merged.summary().std == pytest.approx(batch.std, rel=1e-12)
        assert merged.summary().median == batch.median

    def test_cpk_matches_batch(self):
        rng = np.random.default_rng(9)
        data = rng.normal(10.0, 1.0, 800)
        accumulator = StreamingAccumulator().update(data)
        for limits in ({"lower": 7.0}, {"upper": 13.0},
                       {"lower": 7.0, "upper": 12.0}):
            assert accumulator.cpk(**limits) == pytest.approx(
                cpk(data, **limits), rel=1e-12)

    def test_cpk_degenerate_rules_shared(self):
        accumulator = StreamingAccumulator().update([5.0, 5.0, 5.0])
        assert accumulator.cpk(lower=0.0) == np.inf
        assert accumulator.cpk(upper=4.0) == -np.inf
        assert accumulator.cpk(upper=5.0) == 0.0

    def test_relative_spread_guards_shared(self):
        accumulator = StreamingAccumulator().update([-1.0, 1.0])
        with pytest.raises(ValueError, match="mean is zero"):
            accumulator.relative_spread_pct()


class TestYieldCounter:
    SPECS = SpecSet([Spec("metric", "ge", 10.0)])

    def test_counts_match_estimate_yield(self):
        rng = np.random.default_rng(10)
        population = {"metric": rng.normal(11.0, 1.0, 500)}
        counter = YieldCounter(self.SPECS)
        for lo in range(0, 500, 100):
            counter.update({"metric": population["metric"][lo:lo + 100]})
        batch = estimate_yield(population, self.SPECS)
        assert counter.passed == batch.passed
        assert counter.total == batch.total
        assert counter.per_spec == batch.per_spec_pass
        assert counter.interval() == batch.interval

    def test_merge(self):
        rng = np.random.default_rng(11)
        data = rng.normal(10.0, 1.0, 400)
        a = YieldCounter(self.SPECS).update({"metric": data[:150]})
        b = YieldCounter(self.SPECS).update({"metric": data[150:]})
        a.merge(b)
        whole = YieldCounter(self.SPECS).update({"metric": data})
        assert (a.passed, a.total, a.per_spec) == \
            (whole.passed, whole.total, whole.per_spec)

    def test_merge_rejects_different_specs(self):
        other = SpecSet([Spec("metric", "ge", 99.0)])
        with pytest.raises(ReproError):
            YieldCounter(self.SPECS).merge(YieldCounter(other))


class TestStreamingEngine:
    def test_reduces_same_population_as_batch(self):
        # Same config => same chunk plan and streams: the streaming
        # accumulators must reproduce the batch population's statistics.
        config = MCConfig(n_samples=200, seed=5, chunk_lanes=32)
        batch = summarize(monte_carlo(metric_evaluator, C35,
                                      config)["metric"])
        streaming = monte_carlo_streaming(metric_evaluator, C35,
                                          config).summaries()["metric"]
        assert streaming.n == batch.n
        assert streaming.mean == pytest.approx(batch.mean, rel=1e-12)
        assert streaming.std == pytest.approx(batch.std, rel=1e-12)
        assert streaming.minimum == batch.minimum
        assert streaming.maximum == batch.maximum
        assert streaming.median == batch.median

    @pytest.mark.parametrize("backend", ["thread:2", "process:2"])
    def test_bit_identical_across_backends(self, backend):
        serial = monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=200, seed=9, chunk_lanes=16,
                     backend="serial"))
        pooled = monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=200, seed=9, chunk_lanes=16,
                     backend=backend))
        for a, b in zip(accumulator_states(serial),
                        accumulator_states(pooled),
                        strict=True):
            np.testing.assert_array_equal(a, b)

    def test_memory_bounded_by_chunk_lanes(self):
        seen_sizes = []

        def evaluator(sample):
            seen_sizes.append(sample.size)
            return {"metric": sample.dvto_n}

        result = monte_carlo_streaming(
            evaluator, C35,
            MCConfig(n_samples=500, seed=2, chunk_lanes=25,
                     backend="serial"),
            sketch_capacity=64)
        assert result.samples_done == 500
        assert max(seen_sizes) <= 25
        # The accumulators retain at most the sketch budget, never the
        # full population.
        sketch = result.accumulators["metric"].sketch
        assert sketch.state()["values"].size <= 64

    def test_progress_callback(self):
        seen = []
        monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=50, seed=1, chunk_lanes=20,
                     backend="serial"),
            progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (50, 50)


class TestAdaptiveStopping:
    SPECS = SpecSet([Spec("metric", "ge", 0.0)])

    def test_stops_early_on_easy_target(self):
        result = monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=4000, seed=5, chunk_lanes=32),
            specs=self.SPECS,
            adaptive=AdaptiveStop(metric="yield", ci_width=0.10,
                                  min_samples=64))
        assert result.stopped_early
        assert result.samples_done < result.samples_cap
        assert result.ci_width <= 0.10

    def test_respects_min_samples(self):
        result = monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=4000, seed=5, chunk_lanes=32),
            specs=self.SPECS,
            adaptive=AdaptiveStop(metric="yield", ci_width=0.10,
                                  min_samples=256))
        assert result.samples_done >= 256

    def test_runs_to_cap_on_impossible_target(self):
        result = monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=128, seed=5, chunk_lanes=32),
            specs=self.SPECS,
            adaptive=AdaptiveStop(metric="yield", ci_width=1e-6))
        assert not result.stopped_early
        assert result.samples_done == 128

    def test_variation_metric(self):
        result = monte_carlo_streaming(
            metric_evaluator, C35,
            MCConfig(n_samples=100000, seed=3, chunk_lanes=500),
            adaptive=AdaptiveStop(metric="variation", ci_width=2.0,
                                  min_samples=500))
        assert result.stopped_early
        assert result.samples_done < 100000
        # The achieved width honours the request for every performance.
        assert result.ci_width <= 2.0

    def test_stop_count_independent_of_backend(self):
        counts = set()
        for backend in ("serial", "thread:2"):
            result = monte_carlo_streaming(
                metric_evaluator, C35,
                MCConfig(n_samples=2000, seed=5, chunk_lanes=32,
                         backend=backend),
                specs=self.SPECS,
                adaptive=AdaptiveStop(metric="yield", ci_width=0.10,
                                      min_samples=64, check_every=2))
            counts.add(result.samples_done)
        assert len(counts) == 1

    def test_yield_metric_needs_specs(self):
        with pytest.raises(ReproError, match="spec"):
            monte_carlo_streaming(
                metric_evaluator, C35, MCConfig(n_samples=64),
                adaptive=AdaptiveStop(metric="yield"))

    def test_adaptive_validation(self):
        with pytest.raises(ReproError):
            AdaptiveStop(metric="nonsense")
        with pytest.raises(ReproError):
            AdaptiveStop(ci_width=0.0)
        with pytest.raises(ReproError):
            AdaptiveStop(check_every=0)


class TestCheckpointResume:
    SPECS = SpecSet([Spec("metric", "ge", 10.0)])

    def test_resume_bit_identical_to_uninterrupted(self, tmp_path):
        config = MCConfig(n_samples=160, seed=7, chunk_lanes=32)
        checkpoint = tmp_path / "mc.ckpt.npz"
        first = monte_carlo_streaming(metric_evaluator, C35, config,
                                      specs=self.SPECS,
                                      checkpoint=checkpoint, max_chunks=2)
        assert first.interrupted and not first.complete
        assert first.chunks_done == 2
        resumed = monte_carlo_streaming(metric_evaluator, C35, config,
                                        specs=self.SPECS,
                                        checkpoint=checkpoint)
        whole = monte_carlo_streaming(metric_evaluator, C35, config,
                                      specs=self.SPECS)
        assert resumed.complete
        # The resumed invocation reports the checkpointed work
        # separately from the work it simulated itself.
        assert resumed.samples_resumed == first.samples_done
        assert whole.samples_resumed == 0
        for a, b in zip(accumulator_states(resumed),
                        accumulator_states(whole),
                        strict=True):
            np.testing.assert_array_equal(a, b)
        assert resumed.counter.state().tolist() == \
            whole.counter.state().tolist()

    def test_many_small_shards(self, tmp_path):
        # Sharding across invocations: one chunk per call until done.
        config = MCConfig(n_samples=100, seed=4, chunk_lanes=20)
        checkpoint = tmp_path / "shards.npz"
        while True:
            result = monte_carlo_streaming(metric_evaluator, C35, config,
                                           checkpoint=checkpoint,
                                           max_chunks=1)
            if result.complete:
                break
        whole = monte_carlo_streaming(metric_evaluator, C35, config)
        for a, b in zip(accumulator_states(result),
                        accumulator_states(whole),
                        strict=True):
            np.testing.assert_array_equal(a, b)

    def test_mismatched_config_rejected(self, tmp_path):
        checkpoint = tmp_path / "mc.ckpt.npz"
        monte_carlo_streaming(metric_evaluator, C35,
                              MCConfig(n_samples=64, seed=7,
                                       chunk_lanes=32),
                              checkpoint=checkpoint, max_chunks=1)
        with pytest.raises(ReproError, match="incompatible"):
            monte_carlo_streaming(metric_evaluator, C35,
                                  MCConfig(n_samples=64, seed=8,
                                           chunk_lanes=32),
                                  checkpoint=checkpoint)

    def test_interrupted_resume_same_stop_point_with_check_every(
            self, tmp_path):
        # Regression: a max_chunks interruption mid-round used to shift
        # the stopping-check boundaries of the resumed run, so it could
        # stop at a different sample count than an uninterrupted run.
        # Checks must happen at absolute multiples of check_every.
        specs = SpecSet([Spec("metric", "ge", 0.0)])
        config = MCConfig(n_samples=4000, seed=5, chunk_lanes=32)
        adaptive = AdaptiveStop(metric="yield", ci_width=0.10,
                                min_samples=64, check_every=3)
        whole = monte_carlo_streaming(metric_evaluator, C35, config,
                                      specs=specs, adaptive=adaptive)
        checkpoint = tmp_path / "oddround.npz"
        while True:
            sharded = monte_carlo_streaming(metric_evaluator, C35, config,
                                            specs=specs, adaptive=adaptive,
                                            checkpoint=checkpoint,
                                            max_chunks=1)
            if sharded.complete:
                break
        assert sharded.stopped_early == whole.stopped_early
        assert sharded.samples_done == whole.samples_done
        for a, b in zip(accumulator_states(sharded),
                        accumulator_states(whole),
                        strict=True):
            np.testing.assert_array_equal(a, b)

    def test_mismatched_stage_rejected(self, tmp_path):
        # The stage key is part of the checkpoint identity: callers
        # (e.g. the flow's design-bound verification stage) rely on it
        # to reject a checkpoint recorded for a different population.
        checkpoint = tmp_path / "mc.ckpt.npz"
        config = MCConfig(n_samples=64, seed=7, chunk_lanes=32)
        monte_carlo_streaming(metric_evaluator, C35, config,
                              checkpoint=checkpoint, max_chunks=1,
                              stage="mc-verify-aaaa")
        with pytest.raises(ReproError, match="incompatible"):
            monte_carlo_streaming(metric_evaluator, C35, config,
                                  checkpoint=checkpoint,
                                  stage="mc-verify-bbbb")

    def test_kill_mid_write_preserves_last_checkpoint(self, tmp_path,
                                                      monkeypatch):
        # Satellite gate: checkpoint writes are atomic (temp file +
        # rename), so a process killed mid-write leaves the previous
        # checkpoint intact and the run resumable -- never a truncated
        # npz that poisons every later resume.
        config = MCConfig(n_samples=160, seed=7, chunk_lanes=32)
        checkpoint = tmp_path / "killed.npz"
        monte_carlo_streaming(metric_evaluator, C35, config,
                              specs=self.SPECS, checkpoint=checkpoint,
                              max_chunks=2)
        intact = checkpoint.read_bytes()

        real_savez = np.savez_compressed

        def killed_mid_write(handle, **arrays):
            handle.write(b"partial checkpoint bytes")
            raise KeyboardInterrupt  # the kill lands inside the write

        monkeypatch.setattr(np, "savez_compressed", killed_mid_write)
        with pytest.raises(KeyboardInterrupt):
            monte_carlo_streaming(metric_evaluator, C35, config,
                                  specs=self.SPECS, checkpoint=checkpoint,
                                  max_chunks=1)
        monkeypatch.setattr(np, "savez_compressed", real_savez)
        # The on-disk checkpoint is still the last complete one...
        assert checkpoint.read_bytes() == intact
        assert list(tmp_path.glob(".*.tmp")) == []
        # ...and the resumed run matches an uninterrupted one exactly.
        resumed = monte_carlo_streaming(metric_evaluator, C35, config,
                                        specs=self.SPECS,
                                        checkpoint=checkpoint)
        whole = monte_carlo_streaming(metric_evaluator, C35, config,
                                      specs=self.SPECS)
        assert resumed.complete
        for a, b in zip(accumulator_states(resumed),
                        accumulator_states(whole),
                        strict=True):
            np.testing.assert_array_equal(a, b)

    def test_adaptive_resume_already_settled(self, tmp_path):
        # A resumed run whose checkpoint already satisfies the stopping
        # rule must return immediately without new simulation work.
        config = MCConfig(n_samples=4000, seed=5, chunk_lanes=32)
        checkpoint = tmp_path / "settled.npz"
        adaptive = AdaptiveStop(metric="yield", ci_width=0.10,
                                min_samples=64)
        specs = SpecSet([Spec("metric", "ge", 0.0)])
        first = monte_carlo_streaming(metric_evaluator, C35, config,
                                      specs=specs, adaptive=adaptive,
                                      checkpoint=checkpoint)
        assert first.stopped_early
        calls = []

        def counting_evaluator(sample):
            calls.append(sample.size)
            return metric_evaluator(sample)

        second = monte_carlo_streaming(counting_evaluator, C35, config,
                                       specs=specs, adaptive=adaptive,
                                       checkpoint=checkpoint)
        assert second.stopped_early
        assert calls == []
        assert second.samples_done == first.samples_done


class TestEstimatorWiring:
    SPECS = SpecSet([Spec("metric", "ge", 10.0)])

    def test_matches_batch_estimate(self):
        config = MCConfig(n_samples=300, seed=6, chunk_lanes=64)
        population = monte_carlo(metric_evaluator, C35, config)
        batch = estimate_yield(population, self.SPECS)
        estimate, streaming = estimate_yield_streaming(
            metric_evaluator, C35, self.SPECS, config)
        assert estimate.passed == batch.passed
        assert estimate.total == batch.total
        assert estimate.per_spec_pass == batch.per_spec_pass
        assert estimate.interval == batch.interval
        assert streaming.samples_done == 300

    def test_adaptive_estimate(self):
        estimate, streaming = estimate_yield_streaming(
            metric_evaluator, C35, self.SPECS,
            MCConfig(n_samples=4000, seed=6, chunk_lanes=64),
            adaptive=AdaptiveStop(metric="yield", ci_width=0.12,
                                  min_samples=64))
        assert streaming.stopped_early
        assert estimate.total == streaming.samples_done
        lo, hi = estimate.interval
        assert hi - lo <= 0.12

    def test_estimate_confidence_follows_adaptive_rule(self):
        # The reported interval must be the one the run stopped on.
        estimate, _ = estimate_yield_streaming(
            metric_evaluator, C35, self.SPECS,
            MCConfig(n_samples=4000, seed=6, chunk_lanes=64),
            adaptive=AdaptiveStop(metric="yield", ci_width=0.15,
                                  confidence=0.99, min_samples=64))
        assert estimate.confidence == 0.99
        explicit, _ = estimate_yield_streaming(
            metric_evaluator, C35, self.SPECS,
            MCConfig(n_samples=128, seed=6, chunk_lanes=64),
            confidence=0.90)
        assert explicit.confidence == 0.90

    def test_describe_mentions_stop_state(self):
        _, streaming = estimate_yield_streaming(
            metric_evaluator, C35, self.SPECS,
            MCConfig(n_samples=4000, seed=6, chunk_lanes=64),
            adaptive=AdaptiveStop(metric="yield", ci_width=0.12,
                                  min_samples=64))
        text = streaming.describe()
        assert "adaptive stop" in text
        assert "yield" in text
