"""Tests of the surrogate metamodel subsystem (:mod:`repro.surrogate`)."""

import numpy as np
import pytest

from repro.designs import OTAParameters, evaluate_ota
from repro.designs.filter2 import (FilterCaps, build_filter_transistor,
                                   evaluate_filter)
from repro.errors import ReproError, SurrogateError
from repro.flow import FlowConfig, run_model_build_flow, save_flow_artifacts
from repro.mc import MCConfig, monte_carlo
from repro.measure import Spec, SpecSet
from repro.process import C35, GLOBAL_DIMS
from repro.surrogate import (PolynomialSurrogate, RBFSurrogate,
                             SurrogateConfig, SurrogateYieldEstimator,
                             estimate_yield_surrogate, evaluate_sigma_batch,
                             fit_surrogate, load_surrogates, save_surrogates,
                             train_surrogates)
from repro.yieldmodel import estimate_yield


def _quadratic_truth(x):
    """A known quadratic over the 5 process dims."""
    return (1.5 - 2.0 * x[:, 0] + 0.5 * x[:, 3]
            + 0.25 * x[:, 0] * x[:, 1] - 0.1 * x[:, 2] ** 2)


class TestRegression:
    def test_quadratic_recovers_exact_polynomial(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(60, 5))
        model = PolynomialSurrogate.fit(x, _quadratic_truth(x), degree=2)
        probe = rng.normal(size=(200, 5))
        np.testing.assert_allclose(model.predict(probe),
                                   _quadratic_truth(probe), atol=1e-6)
        assert model.cv_error < 1e-6

    def test_loo_error_matches_noise_floor(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(400, 5))
        noise = 0.3
        y = _quadratic_truth(x) + rng.normal(0.0, noise, 400)
        model = PolynomialSurrogate.fit(x, y, degree=2)
        # LOO RMSE of a well-specified model ~ the irreducible noise.
        assert 0.7 * noise < model.cv_error < 1.4 * noise

    def test_rbf_beats_linear_on_nonlinear_response(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(150, 5))

        def truth(v):
            return np.sin(1.5 * v[:, 0]) + 0.5 * np.cos(v[:, 1])

        linear = fit_surrogate("linear", x, truth(x))
        rbf = fit_surrogate("rbf", x, truth(x))
        assert rbf.cv_error < 0.5 * linear.cv_error
        probe = rng.normal(size=(300, 5))
        rbf_rmse = np.sqrt(np.mean((rbf.predict(probe) - truth(probe)) ** 2))
        assert rbf_rmse < 0.25

    @pytest.mark.parametrize("kind", ["linear", "quadratic", "rbf"])
    def test_serialisation_round_trip(self, kind):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(80, 5))
        y = _quadratic_truth(x)
        model = fit_surrogate(kind, x, y)
        cls = PolynomialSurrogate if kind != "rbf" else RBFSurrogate
        clone = cls.from_arrays(
            {k: np.asarray(v) for k, v in model.to_arrays().items()})
        probe = rng.normal(size=(50, 5))
        np.testing.assert_array_equal(model.predict(probe),
                                      clone.predict(probe))
        assert clone.cv_error == model.cv_error

    def test_rejects_underdetermined_fit(self):
        x = np.zeros((5, 5))
        with pytest.raises(SurrogateError):
            PolynomialSurrogate.fit(x, np.zeros(5), degree=2)

    def test_rejects_unknown_kind_and_bad_shapes(self):
        x = np.random.default_rng(0).normal(size=(30, 5))
        with pytest.raises(SurrogateError):
            fit_surrogate("spline", x, np.zeros(30))
        model = fit_surrogate("linear", x, np.zeros(30))
        with pytest.raises(SurrogateError):
            model.predict(np.zeros((4, 3)))


class TestSigmaFrame:
    def test_round_trip_through_process_sample(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, len(GLOBAL_DIMS)))
        x = np.clip(x, -3.5, None)  # stay away from the positivity clip
        sample = C35.sample_from_sigma(x)
        np.testing.assert_allclose(C35.sigma_coordinates(sample), x,
                                   atol=1e-12)

    def test_zero_coordinates_are_the_nominal_die(self):
        sample = C35.sample_from_sigma(np.zeros((1, 5)))
        assert float(sample.dvto_n[0]) == 0.0
        assert float(sample.kp_scale_n[0]) == 1.0
        assert float(sample.cap_scale[0]) == 1.0

    def test_positivity_clip_matches_sample(self):
        x = np.full((1, 5), -6.0)  # far beyond the -4 sigma clip
        sample = C35.sample_from_sigma(x)
        sig = C35.global_sigmas()
        assert float(sample.kp_scale_n[0]) == 1.0 - 4.0 * sig[1]
        assert float(sample.cap_scale[0]) == 1.0 - 4.0 * sig[4]
        # Threshold shifts are unclipped (sign-symmetric physics).
        np.testing.assert_allclose(sample.dvto_n, -6.0 * sig[0])

    def test_bad_shape_raises(self):
        with pytest.raises(ReproError):
            C35.sample_from_sigma(np.zeros((4, 3)))


def _synthetic_evaluator(pdk):
    """A cheap analytic 'design': performances are known functions of
    the sigma coordinates, so yields are analytically checkable."""

    def evaluate(sample):
        x = pdk.sigma_coordinates(sample)
        return {
            "gain_db": 60.0 + 2.0 * x[:, 0] - 1.0 * x[:, 2],
            "pm_deg": 70.0 - 1.5 * x[:, 3] + 0.5 * x[:, 1] * x[:, 1],
        }

    return evaluate


class TestTrainingAndBundle:
    def test_backend_invariance_of_training_batches(self):
        x = np.random.default_rng(4).normal(size=(64, 5))
        serial = evaluate_sigma_batch(_synthetic_evaluator(C35), C35, x,
                                      backend="serial", chunk_lanes=16)
        threaded = evaluate_sigma_batch(_synthetic_evaluator(C35), C35, x,
                                        backend="thread:3", chunk_lanes=16)
        for name in serial:
            np.testing.assert_array_equal(serial[name], threaded[name])

    def test_bundle_is_a_monte_carlo_evaluator(self):
        bundle = train_surrogates(_synthetic_evaluator(C35), C35,
                                  n_train=64, seed=1, kind="quadratic",
                                  include_mismatch=False)
        perf = monte_carlo(bundle.as_evaluator(C35), C35,
                           MCConfig(n_samples=300, seed=9))
        assert set(perf) == {"gain_db", "pm_deg"}
        assert perf["gain_db"].shape == (300,)
        # The synthetic response is exactly quadratic: predictions through
        # the engine match the direct evaluator on the same dies.
        direct = monte_carlo(_synthetic_evaluator(C35), C35,
                             MCConfig(n_samples=300, seed=9))
        np.testing.assert_allclose(perf["gain_db"], direct["gain_db"],
                                   atol=1e-6)

    def test_evaluator_rejects_foreign_kit(self):
        bundle = train_surrogates(_synthetic_evaluator(C35), C35,
                                  n_train=40, seed=1, kind="linear",
                                  include_mismatch=False)
        bundle.pdk_name = "other-kit"
        with pytest.raises(SurrogateError):
            bundle.as_evaluator(C35)

    def test_augmented_refit_improves_on_new_region(self):
        bundle = train_surrogates(_synthetic_evaluator(C35), C35,
                                  n_train=48, seed=2, kind="quadratic",
                                  include_mismatch=False)
        x_new = np.random.default_rng(8).normal(size=(16, 5))
        y_new = _synthetic_evaluator(C35)(C35.sample_from_sigma(x_new))
        grown = bundle.augmented(x_new, y_new)
        assert grown.n_train == 64
        assert bundle.n_train == 48  # original untouched

    def test_save_load_round_trip(self, tmp_path):
        bundle = train_surrogates(_synthetic_evaluator(C35), C35,
                                  n_train=48, seed=3, kind="rbf",
                                  include_mismatch=False)
        path = save_surrogates(bundle, tmp_path / "bundle.npz")
        clone = load_surrogates(path)
        probe = np.random.default_rng(1).normal(size=(30, 5))
        for name in bundle.names:
            np.testing.assert_array_equal(bundle.predict(probe)[name],
                                          clone.predict(probe)[name])
        assert clone.kind == "rbf"
        assert clone.pdk_name == bundle.pdk_name
        assert clone.n_train == bundle.n_train


class TestSurrogateYieldEstimator:
    SPECS = SpecSet([Spec("gain_db", "ge", 58.0, "dB"),
                     Spec("pm_deg", "ge", 68.5, "deg")])

    def test_agrees_with_direct_mc_on_synthetic_design(self):
        estimate = estimate_yield_surrogate(
            _synthetic_evaluator(C35), self.SPECS, C35,
            SurrogateConfig(n_train=64, n_mc=4000, control_samples=80,
                            refine_budget=40, include_mismatch=False,
                            seed=5))
        perf = monte_carlo(_synthetic_evaluator(C35), C35,
                           MCConfig(n_samples=4000, seed=77,
                                    include_mismatch=False))
        direct = estimate_yield(perf, self.SPECS)
        assert estimate.consistent_with(direct)
        assert estimate.consistent_with_control
        # The response is exactly representable: CV errors collapse and
        # essentially no lane stays ambiguous.
        assert all(err < 1e-6 for err in estimate.cv_errors.values())
        assert estimate.ambiguous_lanes == 0
        assert 0.0 < estimate.yield_estimate < 1.0

    def test_refuses_on_unlearnable_response(self):
        def chaotic(sample):
            x = C35.sigma_coordinates(sample)
            return {"gain_db": np.sin(997.0 * x[:, 0]) * 10.0 + 60.0}

        specs = SpecSet([Spec("gain_db", "ge", 58.0, "dB")])
        estimator = SurrogateYieldEstimator(
            chaotic, specs, C35,
            SurrogateConfig(n_train=64, n_mc=500, control_samples=0,
                            refine_rounds=0, include_mismatch=False,
                            seed=6))
        with pytest.raises(SurrogateError, match="refusing to report"):
            estimator.estimate()

    def test_missing_performance_raises(self):
        specs = SpecSet([Spec("offset_mv", "le", 5.0, "mV")])
        estimator = SurrogateYieldEstimator(
            _synthetic_evaluator(C35), specs, C35,
            SurrogateConfig(n_train=48, n_mc=200, control_samples=0,
                            refine_rounds=1, refine_budget=8,
                            include_mismatch=False, seed=6))
        with pytest.raises(SurrogateError, match="lacks performance"):
            estimator.estimate()

    def test_refinement_spends_simulator_budget_near_limits(self):
        def noisy(sample):
            x = C35.sigma_coordinates(sample)
            rng = np.random.default_rng(
                int(abs(float(x[0, 0])) * 1e6) % (2 ** 31))
            return {"gain_db": 60.0 + 2.0 * x[:, 0]
                    + rng.normal(0.0, 0.5, x.shape[0])}

        specs = SpecSet([Spec("gain_db", "ge", 59.0, "dB")])
        estimate = estimate_yield_surrogate(
            noisy, specs, C35,
            SurrogateConfig(n_train=64, n_mc=1000, control_samples=0,
                            refine_rounds=2, refine_budget=32,
                            include_mismatch=False, seed=7))
        assert estimate.n_refined == 32
        assert estimate.simulator_evals == 64 + 32


class TestSeedDesignAgreement:
    """The acceptance contract: surrogate vs direct MC on both seed
    designs, agreement within the reported confidence intervals."""

    def test_ota_seed_design(self):
        params = OTAParameters()

        def evaluator(die):
            perf = evaluate_ota(params.tile(die.size), variations=die)
            return {"gain_db": perf["gain_db"], "pm_deg": perf["pm_deg"]}

        specs = SpecSet([Spec("gain_db", "ge", 41.0, "dB"),
                         Spec("pm_deg", "ge", 86.8, "deg")])
        estimate = estimate_yield_surrogate(
            evaluator, specs, C35,
            SurrogateConfig(n_train=96, n_mc=2000, control_samples=60,
                            refine_budget=96, seed=2008))
        perf = monte_carlo(evaluator, C35, MCConfig(n_samples=2000,
                                                    seed=2008))
        direct = estimate_yield(perf, specs)
        assert estimate.consistent_with(direct)
        assert estimate.consistent_with_control
        assert estimate.simulator_evals < 2000 / 5

    def test_filter2_seed_design(self):
        caps = FilterCaps()
        ota = OTAParameters()

        def evaluator(die):
            circuit = build_filter_transistor(caps, ota.tile(die.size),
                                              variations=die)
            perf = evaluate_filter(circuit)
            return {"ripple_db": perf["ripple_db"],
                    "atten_db": perf["atten_db"]}

        specs = SpecSet([Spec("ripple_db", "le", 2.3, "dB"),
                         Spec("atten_db", "ge", 37.0, "dB")])
        estimate = estimate_yield_surrogate(
            evaluator, specs, C35,
            SurrogateConfig(n_train=80, n_mc=1500, control_samples=60,
                            refine_budget=64, seed=2008))
        perf = monte_carlo(evaluator, C35, MCConfig(n_samples=1500,
                                                    seed=2008))
        direct = estimate_yield(perf, specs)
        assert estimate.consistent_with(direct)
        assert estimate.consistent_with_control


class TestFlowIntegration:
    def test_flow_trains_and_persists_surrogate(self, tmp_path):
        config = FlowConfig(generations=6, population=16, mc_samples=20,
                            max_pareto_points=8, corners="none",
                            surrogate_budget=48, seed=2008)
        result = run_model_build_flow(config)
        assert result.surrogate is not None
        assert result.surrogate.n_train == 48
        assert result.surrogate_reference.shape == (8,)
        assert "surrogate training" in result.ledger.stages

        written = save_flow_artifacts(result, tmp_path)
        assert (tmp_path / "surrogate_model.npz").exists()
        assert "surrogate" in written
        clone = load_surrogates(written["surrogate"])
        probe = np.zeros((2, 5))
        for name in result.surrogate.names:
            np.testing.assert_array_equal(
                result.surrogate.predict(probe)[name],
                clone.predict(probe)[name])

        import json
        summary = json.loads((tmp_path / "flow_summary.json").read_text())
        assert summary["surrogate"]["n_train"] == 48
        assert set(summary["surrogate"]["cv_errors"]) == {"gain_db",
                                                          "pm_deg"}
