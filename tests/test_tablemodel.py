"""``$table_model`` emulation tests: control strings, grids, files."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtrapolationError, TableModelError
from repro.tablemodel import (ParetoTableModel, TableModel,
                              parse_control_string, read_table, write_table)


class TestControlString:
    def test_single_spec(self):
        (spec,) = parse_control_string("3E", 1)
        assert spec.degree == "3" and spec.extrapolation == "E"

    def test_paper_forms(self):
        specs = parse_control_string("3E,3E", 2)
        assert [repr(s) for s in specs] == ["3E", "3E"]

    def test_broadcast_single_to_many(self):
        specs = parse_control_string("1C", 3)
        assert len(specs) == 3 and all(s.degree == "1" for s in specs)

    def test_default_extrapolation_is_error(self):
        (spec,) = parse_control_string("2", 1)
        assert spec.extrapolation == "E"

    @pytest.mark.parametrize("bad", ["", "4E", "3X", "3EE", "3E,2"])
    def test_malformed(self, bad):
        dimensions = bad.count(",") + 1
        if bad == "3E,2":
            # This one is actually valid (second dim defaults to E).
            specs = parse_control_string(bad, 2)
            assert specs[1].extrapolation == "E"
            return
        with pytest.raises(TableModelError):
            parse_control_string(bad, dimensions)

    def test_dimension_mismatch(self):
        with pytest.raises(TableModelError, match="dimensions"):
            parse_control_string("3E,3E,3E", 2)


class Test1DTables:
    def test_knot_exactness(self):
        x = np.linspace(0, 5, 11)
        y = x ** 2
        tm = TableModel.from_data(x, y, "3E")
        np.testing.assert_allclose(tm(x), y, atol=1e-9)

    def test_unsorted_input_sorted_internally(self):
        tm = TableModel.from_data([2.0, 0.0, 1.0], [4.0, 0.0, 1.0], "1E")
        assert tm(1.5) == pytest.approx(2.5)

    def test_duplicate_coordinates_averaged(self):
        tm = TableModel.from_data([0.0, 1.0, 1.0, 2.0],
                                  [0.0, 1.0, 3.0, 2.0], "1E")
        assert tm(1.0) == pytest.approx(2.0)

    def test_extrapolation_error_mode(self):
        tm = TableModel.from_data([0.0, 1.0], [0.0, 1.0], "1E")
        with pytest.raises(ExtrapolationError):
            tm(1.5)

    def test_clamp_mode(self):
        tm = TableModel.from_data([0.0, 1.0], [0.0, 1.0], "1C")
        assert tm(9.0) == pytest.approx(1.0)

    def test_bounds_property(self):
        tm = TableModel.from_data([0.0, 3.0], [1.0, 2.0], "1E")
        assert tm.bounds == [(0.0, 3.0)]

    def test_array_query_broadcast(self):
        tm = TableModel.from_data([0.0, 1.0, 2.0], [0.0, 1.0, 4.0], "1E")
        out = tm(np.array([0.5, 1.5]))
        assert out.shape == (2,)


class Test2DGrids:
    @staticmethod
    def grid_table(nx=5, ny=4, control="3E,3E"):
        gx, gy = np.meshgrid(np.linspace(0, 1, nx), np.linspace(0, 2, ny),
                             indexing="ij")
        coords = np.stack([gx.ravel(), gy.ravel()], axis=1)
        values = 2 * gx.ravel() + 3 * gy.ravel()
        return TableModel.from_data(coords, values, control)

    def test_plane_reproduced(self):
        tm = self.grid_table()
        assert tm(0.37, 1.21) == pytest.approx(2 * 0.37 + 3 * 1.21, abs=1e-9)

    def test_grid_points_exact(self):
        tm = self.grid_table()
        assert tm(0.25, 2.0) == pytest.approx(2 * 0.25 + 6.0, abs=1e-9)

    def test_per_dimension_extrapolation(self):
        tm = self.grid_table(control="3C,3E")
        # First dim clamps, second raises.
        assert tm(5.0, 1.0) == pytest.approx(2 * 1.0 + 3 * 1.0, abs=1e-9)
        with pytest.raises(ExtrapolationError):
            tm(0.5, 5.0)

    def test_scattered_data_rejected_with_hint(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.5], [2.0, 1.7]])
        with pytest.raises(TableModelError, match="ParetoTableModel"):
            TableModel.from_data(coords, [1.0, 2.0, 3.0], "3E,3E")

    def test_wrong_query_arity(self):
        tm = self.grid_table()
        with pytest.raises(TableModelError, match="inputs"):
            tm(0.5)

    def test_3d_grid(self):
        axes = [np.linspace(0, 1, 3)] * 3
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        coords = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        values = gx.ravel() + 10 * gy.ravel() + 100 * gz.ravel()
        tm = TableModel.from_data(coords, values, "1E,1E,1E")
        assert tm(0.5, 0.5, 0.5) == pytest.approx(55.5)


class TestTblFiles:
    def test_roundtrip_full_precision(self, tmp_path):
        x = np.array([1.0 / 3.0, np.pi, 2.0 ** 0.5 * 1e-12])
        y = np.array([1e-15, 2.5, -3.7e8])
        path = tmp_path / "t.tbl"
        write_table(path, np.sort(x), y, header="test table")
        coords, values = read_table(path)
        np.testing.assert_array_equal(coords[:, 0], np.sort(x))
        np.testing.assert_array_equal(values, y)

    def test_comments_and_blank_lines(self):
        text = """# header comment
        * spice comment

        1.0 2.0
        3.0 4.0
        // c++ style
        5.0 6.0
        """
        coords, values = read_table(text)
        assert coords.shape == (3, 1)
        np.testing.assert_array_equal(values, [2.0, 4.0, 6.0])

    def test_two_input_columns(self):
        coords, values = read_table("1 2 3\n4 5 6\n")
        assert coords.shape == (2, 2)
        np.testing.assert_array_equal(values, [3.0, 6.0])

    def test_ragged_rows_rejected(self):
        with pytest.raises(TableModelError, match="columns"):
            read_table("1 2\n1 2 3\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(TableModelError, match="non-numeric"):
            read_table("1 abc\n")

    def test_empty_table_rejected(self):
        with pytest.raises(TableModelError, match="no data"):
            read_table("# only comments\n")

    def test_single_column_rejected(self):
        with pytest.raises(TableModelError):
            read_table("1.0\n2.0\n")

    def test_write_validates_shape(self, tmp_path):
        with pytest.raises(TableModelError):
            write_table(tmp_path / "bad.tbl", [1.0, 2.0], [1.0])

    def test_table_model_from_file(self, tmp_path):
        path = tmp_path / "m.tbl"
        write_table(path, [0.0, 1.0, 2.0], [0.0, 1.0, 4.0])
        tm = TableModel.from_file(path, "3E")
        assert tm(1.0) == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=20,
                    unique=True))
    def test_roundtrip_property(self, xs):
        import tempfile
        from pathlib import Path
        xs = sorted(xs)
        ys = [float(np.sin(x)) for x in xs]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.tbl"
            write_table(path, xs, ys)
            coords, values = read_table(path)
        np.testing.assert_array_equal(coords[:, 0], xs)
        np.testing.assert_array_equal(values, ys)


class TestDatafileEdgeCases:
    """Exhaustive `.tbl` edge cases: every comment prefix, blank-line
    handling, and bit-exact ``%.17g`` round-trips of written files."""

    @pytest.mark.parametrize("prefix", ["#", "*", "//"])
    def test_each_comment_prefix_individually(self, prefix):
        text = f"{prefix} leading comment\n1.0 2.0\n{prefix}{prefix} doubled\n3.0 4.0\n"
        coords, values = read_table(text)
        np.testing.assert_array_equal(coords[:, 0], [1.0, 3.0])
        np.testing.assert_array_equal(values, [2.0, 4.0])

    @pytest.mark.parametrize("prefix", ["#", "*", "//"])
    def test_indented_comments_are_still_comments(self, prefix):
        # Lines are stripped before the prefix check.
        coords, values = read_table(f"   {prefix} indented\n\t1.0 2.0\n")
        assert coords.shape == (1, 1)
        np.testing.assert_array_equal(values, [2.0])

    def test_comment_only_prefix_line(self):
        # A bare prefix with no comment text is a comment, not data.
        coords, values = read_table("#\n*\n//\n7.0 8.0\n")
        assert coords.shape == (1, 1)
        np.testing.assert_array_equal(values, [8.0])

    def test_blank_and_whitespace_only_lines_skipped(self):
        text = "\n   \n\t\n1.0 2.0\n\n \t \n3.0 4.0\n\n"
        coords, values = read_table(text)
        np.testing.assert_array_equal(coords[:, 0], [1.0, 3.0])
        np.testing.assert_array_equal(values, [2.0, 4.0])

    def test_all_prefixes_blanks_and_data_interleaved(self):
        text = (
            "# hash header\n"
            "* star header\n"
            "// slash header\n"
            "\n"
            "0.5 1.5\n"
            "  * indented star\n"
            "1.5 2.5\n"
            "\t// indented slash\n"
            "2.5 3.5\n"
            "   \n"
            "# trailing comment\n"
        )
        coords, values = read_table(text)
        np.testing.assert_array_equal(coords[:, 0], [0.5, 1.5, 2.5])
        np.testing.assert_array_equal(values, [1.5, 2.5, 3.5])

    def test_written_file_round_trips_bit_exactly(self, tmp_path):
        # Adversarial doubles: denormals, ulp-neighbours, huge/tiny
        # magnitudes, negative zero.  %.17g must reproduce each bit
        # pattern exactly through a write/read cycle.
        values = np.array([
            np.nextafter(1.0, 2.0),          # 1 + 1 ulp
            np.nextafter(1.0, 0.0),          # 1 - 1 ulp
            5e-324,                          # smallest denormal
            np.finfo(float).tiny,            # smallest normal
            np.finfo(float).max,
            -np.finfo(float).max,
            -0.0,
            np.pi * 1e300,
            1.0 / 3.0,
            -2.0 ** -1074,
        ])
        coords = np.linspace(0.0, 1.0, values.size) + 1.0 / 7.0
        path = tmp_path / "bits.tbl"
        write_table(path, coords, values, header="bit exactness")
        read_coords, read_values = read_table(path)
        # Bit-for-bit: compare the raw IEEE-754 representations, which
        # distinguishes -0.0 from 0.0 and every ulp step.
        assert read_values.tobytes() == values.tobytes()
        assert read_coords[:, 0].tobytes() == coords.tobytes()

    def test_written_multicolumn_round_trips_bit_exactly(self, tmp_path):
        rng = np.random.default_rng(13)
        coords = rng.normal(size=(25, 3)) * 10.0 ** rng.integers(
            -300, 300, size=(25, 3))
        values = rng.normal(size=25) * 1e-200
        path = tmp_path / "wide.tbl"
        write_table(path, coords, values)
        read_coords, read_values = read_table(path)
        assert read_coords.tobytes() == coords.tobytes()
        assert read_values.tobytes() == values.tobytes()

    def test_written_header_lines_are_hash_comments(self, tmp_path):
        path = tmp_path / "hdr.tbl"
        write_table(path, [1.0], [2.0], header="line one\nline two")
        text = path.read_text()
        assert text.startswith("# line one\n# line two\n")
        coords, values = read_table(path)
        assert coords.shape == (1, 1)
