"""Telemetry subsystem tests: tracer, metrics, sink, renderers, wiring.

The contracts gated here:

* spans nest identically across the serial, thread and process
  execution backends (the ``bind_task`` span-context handoff);
* the disabled path is inert -- ``span()`` returns the shared no-op
  singleton, ``bind_task`` is the identity, no sink exists -- and
  enabling telemetry never changes numeric results (bit-identical
  Monte-Carlo populations on/off);
* the JSONL sink is append-only, rotation-capped and tolerant of torn
  final lines;
* ``repro trace`` reproduces the flow's :class:`SimulationLedger`
  table exactly from the event stream.
"""

import dataclasses
import json

import pytest

from repro import telemetry
from repro.flow.accounting import SimulationLedger
from repro.mc import MCConfig, monte_carlo
from repro.process import C35
from repro.telemetry import (NULL_SPAN, EventSink, MetricsRegistry,
                             ledger_rows, load_events, render_trace,
                             span_tree)


def evaluator(sample):
    return {"m": 10.0 + 100.0 * sample.dvto_n}


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Each test starts disabled and leaves no sink behind."""
    telemetry.shutdown()
    yield
    telemetry.shutdown()


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.counter_add("hits")
        registry.counter_add("hits", 4)
        assert registry.counter_value("hits") == 5
        assert registry.snapshot()["counters"] == {"hits": 5}

    def test_gauges_keep_timestamped_history(self):
        registry = MetricsRegistry()
        registry.gauge_set("bytes", 10.0)
        registry.gauge_set("bytes", 20.0)
        samples = registry.gauge_samples("bytes")
        assert [value for _, value in samples] == [10.0, 20.0]
        assert all(t > 0 for t, _ in samples)
        snap = registry.snapshot()["gauges"]["bytes"]
        assert snap["value"] == 20.0
        assert len(snap["samples"]) == 2

    def test_gauge_history_is_bounded(self):
        registry = MetricsRegistry()
        for index in range(1000):
            registry.gauge_set("g", float(index))
        samples = registry.gauge_samples("g")
        assert len(samples) == telemetry.metrics.GAUGE_HISTORY
        assert samples[-1][1] == 999.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        registry.histogram_observe("lat", 0.003, edges=(0.01, 0.1, 1.0))
        registry.histogram_observe("lat", 0.5, edges=(0.01, 0.1, 1.0))
        registry.histogram_observe("lat", 99.0, edges=(0.01, 0.1, 1.0))
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["counts"] == [1, 0, 1, 1]  # <=0.01, <=0.1, <=1, overflow
        assert snap["total"] == 3
        assert snap["sum"] == pytest.approx(0.003 + 0.5 + 99.0)

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter_add("n")
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}


class TestDisabledPath:
    def test_span_is_shared_noop_singleton(self):
        assert telemetry.span("anything", attr=1) is NULL_SPAN
        assert telemetry.span("other") is NULL_SPAN
        with telemetry.span("nested") as span:
            span.set(ignored=True)

    def test_bind_task_is_identity(self):
        def fn(task):
            return task
        assert telemetry.bind_task(fn) is fn

    def test_no_sink_allocated(self):
        assert not telemetry.enabled()
        telemetry.emit("event", field=1)  # dropped, no error
        assert telemetry._SINK is None

    def test_counters_still_count(self):
        before = telemetry.REGISTRY.counter_value("test.disabled")
        telemetry.counter_add("test.disabled", 3)
        assert telemetry.REGISTRY.counter_value("test.disabled") == before + 3

    def test_results_bit_identical_on_off(self, tmp_path):
        config = MCConfig(n_samples=64, seed=7, chunk_lanes=16)
        baseline = monte_carlo(evaluator, C35, config)
        with telemetry.session(tmp_path / "events.jsonl"):
            traced = monte_carlo(evaluator, C35, config)
        again = monte_carlo(evaluator, C35, config)
        for name in baseline:
            assert baseline[name].tobytes() == traced[name].tobytes()
            assert baseline[name].tobytes() == again[name].tobytes()


class TestSpans:
    def test_nesting_and_attributes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with telemetry.session(path):
            with telemetry.span("outer", stage="demo"):
                with telemetry.span("inner") as inner:
                    inner.set(lanes=4)
        events = load_events(path)
        opens = [e for e in events if e["type"] == "span_open"]
        closes = [e for e in events if e["type"] == "span_close"]
        assert [e["name"] for e in opens] == ["outer", "inner"]
        outer, inner = opens
        assert outer["parent"] is None
        assert inner["parent"] == outer["span"]
        assert inner["trace"] == outer["trace"]
        assert outer["attrs"] == {"stage": "demo"}
        by_name = {e["name"]: e for e in closes}
        assert by_name["inner"]["attrs"] == {"lanes": 4}
        assert all(e["elapsed"] >= 0 for e in closes)
        assert all(e["status"] == "ok" for e in closes)

    def test_error_status_on_exception(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with telemetry.session(path):
            with pytest.raises(ValueError):
                with telemetry.span("failing"):
                    raise ValueError("boom")
        closes = [e for e in load_events(path) if e["type"] == "span_close"]
        assert closes[0]["status"] == "error"

    def test_session_restores_previous_state(self, tmp_path):
        telemetry.configure(tmp_path / "ambient.jsonl")
        ambient = telemetry._SINK
        with telemetry.session(tmp_path / "scoped.jsonl"):
            assert telemetry._SINK is not ambient
        assert telemetry._SINK is ambient

    def test_session_with_falsy_path_is_passthrough(self):
        with telemetry.session(None):
            assert not telemetry.enabled()
        with telemetry.session(""):
            assert not telemetry.enabled()


def _nesting_edges(path):
    """The trace's (name, parent-name) multiset -- the nesting shape."""
    opens = {e["span"]: e for e in load_events(path)
             if e["type"] == "span_open"}
    edges = []
    for event in opens.values():
        parent = opens.get(event.get("parent"))
        edges.append((event["name"],
                      parent["name"] if parent else None))
    return sorted(edges)


class TestBackendNesting:
    @pytest.mark.parametrize("backend", ["serial", "thread:2", "process:2"])
    def test_chunk_spans_parent_identically(self, tmp_path, backend):
        path = tmp_path / f"{backend.replace(':', '-')}.jsonl"
        config = MCConfig(n_samples=64, seed=7, chunk_lanes=16,
                          backend=backend)
        with telemetry.session(path):
            monte_carlo(evaluator, C35, config)
        edges = _nesting_edges(path)
        assert edges == sorted(
            [("mc.single", None), ("exec.run", "mc.single")]
            + [("mc.chunk", "exec.run")] * 4)

    def test_fork_reparenting_carries_span_context(self, tmp_path):
        # The forked workers' span_open events must name the parent
        # process's exec.run span as parent (the SpanContext handoff),
        # and every chunk span must be closed.
        path = tmp_path / "fork.jsonl"
        config = MCConfig(n_samples=64, seed=7, chunk_lanes=16,
                          backend="process:2")
        with telemetry.session(path):
            monte_carlo(evaluator, C35, config)
        events = load_events(path)
        opens = {e["span"]: e for e in events if e["type"] == "span_open"}
        chunk_opens = [e for e in opens.values() if e["name"] == "mc.chunk"]
        run_span = next(e["span"] for e in opens.values()
                        if e["name"] == "exec.run")
        assert len(chunk_opens) == 4
        assert all(e["parent"] == run_span for e in chunk_opens)
        closed = {e["span"] for e in events if e["type"] == "span_close"}
        assert all(e["span"] in closed for e in chunk_opens)


class TestEventSink:
    def test_appends_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path)
        sink.emit({"type": "a", "n": 1})
        sink.emit({"type": "b", "n": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["a", "b"]

    def test_fresh_truncates_append_preserves(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventSink(path).emit({"type": "old"})
        EventSink(path, fresh=False).emit({"type": "new"})
        assert [e["type"] for e in load_events(path)] == ["old", "new"]
        EventSink(path, fresh=True).emit({"type": "only"})
        assert [e["type"] for e in load_events(path)] == ["only"]

    def test_rotation_caps_size(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path, max_bytes=512)
        for index in range(100):
            sink.emit({"type": "tick", "index": index, "pad": "x" * 32})
        rotated = path.with_name(path.name + ".1")
        assert rotated.exists()
        assert path.stat().st_size <= 512 + 128  # cap + one event slack
        # Both generations remain readable.
        assert load_events(path)
        assert load_events(rotated)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path)
        sink.emit({"type": "whole", "n": 1})
        with open(path, "a") as handle:
            handle.write('{"type": "torn", "n"')  # crash mid-write
        events = load_events(path)
        assert [e["type"] for e in events] == ["whole"]

    def test_load_events_missing_file(self, tmp_path):
        assert load_events(tmp_path / "absent.jsonl") == []


class TestEnvironmentInit:
    def test_env_var_enables_appending_sink(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        path.write_text('{"type": "pre-existing"}\n')
        monkeypatch.setenv(telemetry.TELEMETRY_ENV_VAR, str(path))
        telemetry._init_from_environment()
        try:
            assert telemetry.enabled()
            telemetry.emit("from-env")
        finally:
            telemetry.shutdown()
        # fresh=False: processes sharing one REPRO_TELEMETRY append.
        assert [e["type"] for e in load_events(path)] == \
            ["pre-existing", "from-env"]

    def test_blank_env_var_stays_disabled(self, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV_VAR, "  ")
        telemetry._init_from_environment()
        assert not telemetry.enabled()


class TestAnnouncer:
    def test_messages_pass_through_byte_identical(self, tmp_path):
        messages = ["stage one", "  detail 42", ""]
        plain, traced = [], []
        say = telemetry.announcer(plain.append)
        for message in messages:
            say(message)
        with telemetry.session(tmp_path / "events.jsonl"):
            say = telemetry.announcer(traced.append)
            for message in messages:
                say(message)
        assert plain == messages
        assert traced == messages
        events = load_events(tmp_path / "events.jsonl")
        assert [e["message"] for e in events
                if e["type"] == "progress"] == messages

    def test_none_progress_swallows_output(self, tmp_path):
        with telemetry.session(tmp_path / "events.jsonl"):
            telemetry.announcer(None)("quiet")
        events = load_events(tmp_path / "events.jsonl")
        assert [e["message"] for e in events
                if e["type"] == "progress"] == ["quiet"]


class TestRenderers:
    def test_span_tree_shape(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with telemetry.session(path):
            with telemetry.span("root"):
                with telemetry.span("child"):
                    pass
                with telemetry.span("child"):
                    pass
        roots = span_tree(load_events(path))
        assert [node.name for node in roots] == ["root"]
        assert [node.name for node in roots[0].children] == \
            ["child", "child"]
        assert roots[0].cumulative >= sum(
            child.cumulative for child in roots[0].children)
        assert roots[0].self_time >= 0

    def test_unclosed_span_renders_open(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry.configure(path)
        telemetry._TRACER.span("dangling", {}).__enter__()
        telemetry.shutdown()
        text = render_trace(path)
        assert "dangling" in text and "(open)" in text

    def test_trace_reproduces_ledger_table_exactly(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ledger = SimulationLedger()
        ledger.record("optimisation", 1200, 1.25)
        ledger.record("verification", 500, 0.75)
        with telemetry.session(path):
            with telemetry.span("flow.build"):
                pass
            telemetry.emit_ledger(ledger)
        rows = ledger_rows(load_events(path))
        assert rows == ledger.as_rows()
        text = render_trace(path)
        assert ledger.table() in text

    def test_stage_sims_attached_to_spans(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ledger = SimulationLedger()
        with telemetry.session(path):
            with ledger.timed("verification", 500):
                pass
            telemetry.emit_ledger(ledger)
        text = render_trace(path)
        line = next(line for line in text.splitlines()
                    if "flow.stage: verification" in line)
        assert line.rstrip().endswith("500")


class TestFlowIntegration:
    def test_flow_trace_sim_counts_match_ledger(self, tmp_path):
        from repro.flow.pipeline import FlowConfig, run_model_build_flow

        path = tmp_path / "flow.jsonl"
        config = FlowConfig(generations=4, population=12, mc_samples=16,
                            max_pareto_points=6, corners="none",
                            telemetry=str(path))
        result = run_model_build_flow(config)
        # The rendered trace ends with the exact ledger table the flow
        # itself prints -- per-stage simulation counts included.
        assert render_trace(path).endswith(result.ledger.table())
        assert not telemetry.enabled()  # session closed behind itself

    def test_flow_artifacts_identical_with_and_without(self, tmp_path):
        from repro.flow.pipeline import FlowConfig, run_model_build_flow

        base = FlowConfig(generations=4, population=12, mc_samples=16,
                          max_pareto_points=6, corners="none")
        plain = run_model_build_flow(base)
        traced = run_model_build_flow(dataclasses.replace(
            base, telemetry=str(tmp_path / "flow.jsonl")))
        assert plain.pareto_parameters.tobytes() == \
            traced.pareto_parameters.tobytes()
        assert plain.pareto_objectives.tobytes() == \
            traced.pareto_objectives.tobytes()
        for name in plain.mc_samples:
            assert plain.mc_samples[name].tobytes() == \
                traced.mc_samples[name].tobytes()


class TestWorkloadCacheEvents:
    def test_hit_and_miss_recorded(self, tmp_path):
        from repro.cache import ResultCache
        from repro.measure.specs import Spec, SpecSet
        from repro.workload import StreamingYieldWorkload

        workload = StreamingYieldWorkload(
            evaluator, C35, SpecSet([Spec("m", "ge", 10.0)]),
            MCConfig(n_samples=32, seed=3, chunk_lanes=16))
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "events.jsonl"
        with telemetry.session(path):
            workload.run_cached(cache)
            workload.run_cached(cache)
        events = [e for e in load_events(path)
                  if e["type"] == "workload_cache"]
        assert [e["hit"] for e in events] == [False, True]
        assert all(e["key"] == workload.key() for e in events)
        # The cache's own counters surfaced through the registry too.
        metric_names = {e["name"] for e in load_events(path)
                        if e["type"] == "metric"}
        assert {"cache.misses", "cache.stores", "cache.hits"} <= metric_names
