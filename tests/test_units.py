"""Tests for engineering-unit parsing, formatting and dB maths."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import db10, db20, format_si, from_db10, from_db20, parse_si


class TestParseSI:
    def test_plain_numbers(self):
        assert parse_si("42") == 42.0
        assert parse_si("-3.5") == -3.5
        assert parse_si("1e-6") == 1e-6
        assert parse_si("+.5") == 0.5

    def test_numeric_passthrough(self):
        assert parse_si(42) == 42.0
        assert parse_si(3.14) == 3.14

    @pytest.mark.parametrize("text,expected", [
        ("10u", 1e-5),
        ("0.35u", 0.35e-6),
        ("5meg", 5e6),
        ("5MEG", 5e6),
        ("2.2k", 2200.0),
        ("100p", 100e-12),
        ("3n", 3e-9),
        ("1.5f", 1.5e-15),
        ("2g", 2e9),
        ("1t", 1e12),
        ("7a", 7e-18),
        ("4x", 4e6),
    ])
    def test_suffixes(self, text, expected):
        assert parse_si(text) == pytest.approx(expected, rel=1e-12)

    def test_milli_vs_mega_trap(self):
        # The classic SPICE trap: 'm' is milli, 'meg' is mega.
        assert parse_si("1m") == 1e-3
        assert parse_si("1meg") == 1e6

    @pytest.mark.parametrize("text,expected", [
        ("10uF", 1e-5),
        ("0.35um", 0.35e-6),
        ("100pF", 100e-12),
        ("50k", 50e3),
        ("3.3V", 3.3),
    ])
    def test_trailing_units_ignored(self, text, expected):
        assert parse_si(text) == pytest.approx(expected, rel=1e-12)

    def test_case_insensitive(self):
        assert parse_si("10U") == parse_si("10u")
        assert parse_si("2K") == parse_si("2k")

    @pytest.mark.parametrize("bad", ["", "abc", "1..2", "--3", "u10"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_si(bad)

    @given(st.floats(min_value=-1e12, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_scientific_roundtrip(self, value):
        assert parse_si(f"{value!r}") == pytest.approx(value, rel=1e-15)


class TestFormatSI:
    def test_basic(self):
        assert format_si(1e-5, "F") == "10uF"
        assert format_si(2200.0) == "2.2k"
        assert format_si(5e6, "Hz") == "5MHz"

    def test_zero_and_nonfinite(self):
        assert format_si(0.0, "V") == "0V"
        assert "inf" in format_si(math.inf)

    @given(st.floats(min_value=1e-17, max_value=1e13))
    def test_roundtrip_through_parse(self, value):
        text = format_si(value, digits=12)
        # format_si uses upper-case M for mega which parse_si reads as
        # milli; normalise through lower-case with the meg spelling.
        text = text.replace("M", "meg")
        assert parse_si(text) == pytest.approx(value, rel=1e-9)

    def test_negative_values(self):
        assert format_si(-2200.0) == "-2.2k"


class TestDecibels:
    def test_db20_known_values(self):
        assert db20(10.0) == pytest.approx(20.0)
        assert db20(1.0) == pytest.approx(0.0)
        assert db20(math.sqrt(0.5)) == pytest.approx(-3.0103, abs=1e-3)

    def test_db10_known_values(self):
        assert db10(10.0) == pytest.approx(10.0)
        assert db10(0.5) == pytest.approx(-3.0103, abs=1e-3)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_db20_roundtrip(self, ratio):
        assert from_db20(db20(ratio)) == pytest.approx(ratio, rel=1e-12)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_db10_roundtrip(self, ratio):
        assert from_db10(db10(ratio)) == pytest.approx(ratio, rel=1e-12)

    def test_paper_gain_conversion(self):
        # The Verilog-A listing: gain_in_v = pow(10, gain_prop/20).
        assert from_db20(50.26) == pytest.approx(10 ** (50.26 / 20))
