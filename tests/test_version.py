"""Version single-sourcing tests.

The version lives in exactly one place -- ``repro.__version__`` --
and everything else (packaging metadata, ``repro --version``) reads it
from there.  PR 4 fixed a real drift: ``setup.cfg`` said 0.1.0 while the
package said 1.0.0.
"""

import configparser
import importlib.metadata
import re
from pathlib import Path

import pytest

import repro
from repro.cli import main

SETUP_CFG = Path(__file__).parent.parent / "setup.cfg"


def test_version_is_a_sane_string():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_setup_cfg_single_sources_the_version():
    parser = configparser.ConfigParser()
    parser.read(SETUP_CFG)
    assert parser["metadata"]["version"] == "attr: repro.__version__"


def test_cli_version_reports_package_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_installed_distribution_agrees_when_present():
    """When the package is pip-installed (the packaged-install CI job),
    the distribution metadata must agree with ``repro.__version__``."""
    try:
        installed = importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        pytest.skip("repro is not installed as a distribution here")
    assert installed == repro.__version__
