"""Workload abstraction tests.

Covers the satellite gate on fingerprints -- stable across processes,
invalidated by version/seed/spec/design changes, indifferent to
execution backend -- and the cache round trip: a hit must rebuild a
value bit-identical to the fresh run's.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cache import ResultCache, fingerprint_key
from repro.errors import (JobCancelled, LintGateError, ParseError,
                          WorkloadError)
from repro.mc import MCConfig
from repro.measure.specs import Spec, SpecSet
from repro.process import C35
from repro.workload import (BatchYieldWorkload, CornerSweepWorkload,
                            LintWorkload, RareEventWorkload,
                            StreamingYieldWorkload, SurrogateTrainWorkload,
                            design_digest, guarded_progress,
                            lint_workload_from_source,
                            ota_estimate_workload, ota_rare_workload)
from repro.yieldmodel import RareEventConfig

DESIGN = {"w1": 3e-05, "l1": 1e-06, "w2": 6e-05, "l2": 1e-06,
          "w3": 1e-05, "l3": 2e-06, "w4": 2e-05, "l4": 2e-06}

SPECS = SpecSet([Spec("metric", "ge", 10.0)])


def metric_evaluator(sample):
    """Deterministic function of the die parameters (no simulation)."""
    return {"metric": 10.0 + 100.0 * sample.dvto_n}


def estimate_workload(**overrides):
    options = dict(n_samples=64, seed=7, chunk_lanes=16)
    options.update(overrides)
    return ota_estimate_workload(DESIGN, **options)


class TestFingerprintStability:
    def test_identical_across_processes(self):
        # The satellite gate: the same request must fingerprint
        # identically in a fresh interpreter (no per-process salt, no
        # dict-order dependence, no id()s leaking in).
        script = (
            "import json, sys\n"
            "from repro.workload import ota_estimate_workload\n"
            "design = json.loads(sys.argv[1])\n"
            "w = ota_estimate_workload(design, n_samples=64, seed=7, "
            "chunk_lanes=16)\n"
            "print(w.fingerprint())\n")
        import json
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script, json.dumps(DESIGN)],
            capture_output=True, text=True, env=env, check=True)
        assert result.stdout.strip() == estimate_workload().fingerprint()

    def test_dict_and_flat_design_agree(self):
        from repro.designs.ota import OTA_DESIGN_SPACE
        flat = [DESIGN[name] for name in OTA_DESIGN_SPACE.names]
        assert ota_estimate_workload(flat, seed=7).fingerprint() == \
            ota_estimate_workload(DESIGN, seed=7).fingerprint()

    def test_key_is_digest_of_fingerprint(self):
        workload = estimate_workload()
        assert workload.key() == fingerprint_key(workload.fingerprint())


class TestFingerprintInvalidation:
    def test_version_change_invalidates(self, monkeypatch):
        before = estimate_workload().fingerprint()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert estimate_workload().fingerprint() != before

    def test_seed_and_count_invalidate(self):
        base = estimate_workload().fingerprint()
        assert estimate_workload(seed=8).fingerprint() != base
        assert estimate_workload(n_samples=65).fingerprint() != base
        assert estimate_workload(chunk_lanes=32).fingerprint() != base

    def test_specs_invalidate(self):
        base = estimate_workload().fingerprint()
        tightened = estimate_workload(
            specs=[["gain_db", "ge", 55.0, "dB"],
                   ["pm_deg", "ge", 60.0, "deg"]])
        assert tightened.fingerprint() != base

    def test_design_invalidates(self):
        other = dict(DESIGN, w1=DESIGN["w1"] * 1.01)
        assert ota_estimate_workload(other, seed=7).fingerprint() != \
            ota_estimate_workload(DESIGN, seed=7).fingerprint()

    def test_testbench_invalidates(self):
        assert estimate_workload(cl=20e-12).fingerprint() != \
            estimate_workload().fingerprint()

    def test_backend_and_workers_do_not(self):
        # The repro.exec determinism contract: parallelisation never
        # changes numbers, so it must never split the cache.
        serial = StreamingYieldWorkload(
            metric_evaluator, C35, SPECS,
            MCConfig(n_samples=64, seed=1, chunk_lanes=16,
                     backend="serial"))
        pooled = StreamingYieldWorkload(
            metric_evaluator, C35, SPECS,
            MCConfig(n_samples=64, seed=1, chunk_lanes=16,
                     backend="thread:4"))
        assert serial.fingerprint() == pooled.fingerprint()

    def test_corner_sweep_ignores_chunking_entirely(self):
        from repro.corners import CornerGrid
        grid = CornerGrid.full(C35)
        coarse = CornerSweepWorkload(metric_evaluator, 4, C35, grid,
                                     chunk_lanes=10)
        fine = CornerSweepWorkload(metric_evaluator, 4, C35, grid,
                                   chunk_lanes=1000, workers=3)
        assert coarse.fingerprint() == fine.fingerprint()

    def test_design_digest_distinguishes(self):
        a = design_digest(reference=np.arange(8.0), pdk="c35")
        b = design_digest(reference=np.arange(8.0) + 1e-12, pdk="c35")
        assert a.startswith("design:")
        assert a != b
        assert a == design_digest(reference=np.arange(8.0), pdk="c35")


class TestCacheRoundTrip:
    def test_streaming_yield_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        workload = StreamingYieldWorkload(
            metric_evaluator, C35, SPECS,
            MCConfig(n_samples=128, seed=5, chunk_lanes=32))
        fresh = workload.run_cached(cache)
        hit = workload.run_cached(cache)
        assert not fresh.cache_hit and hit.cache_hit
        fresh_estimate, streaming = fresh.value
        hit_estimate, no_streaming = hit.value
        # YieldEstimate is a dataclass: equality is exact counts,
        # per-spec dict and confidence -- the bit-identity gate.
        assert hit_estimate == fresh_estimate
        assert streaming is not None and no_streaming is None
        assert hit.meta == fresh.meta
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_batch_yield_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        workload = BatchYieldWorkload(metric_evaluator, C35, SPECS,
                                      MCConfig(n_samples=100, seed=3))
        fresh = workload.run_cached(cache)
        hit = workload.run_cached(cache)
        assert hit.cache_hit
        assert hit.value[0] == fresh.value[0]
        assert fresh.value[1] is not None and hit.value[1] is None

    def test_surrogate_bundle_bit_identical(self, tmp_path):
        from repro.surrogate import surrogate_arrays
        cache = ResultCache(tmp_path)
        workload = SurrogateTrainWorkload(metric_evaluator, C35,
                                          n_train=32, seed=2,
                                          chunk_lanes=16)
        fresh = workload.run_cached(cache)
        hit = workload.run_cached(cache)
        assert hit.cache_hit
        fresh_arrays = surrogate_arrays(fresh.value)
        hit_arrays = surrogate_arrays(hit.value)
        assert set(fresh_arrays) == set(hit_arrays)
        for name in fresh_arrays:
            np.testing.assert_array_equal(hit_arrays[name],
                                          fresh_arrays[name])

    def test_rare_event_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        workload = RareEventWorkload(
            metric_evaluator, C35, SPECS,
            RareEventConfig(n_per_level=48, n_final=48, max_levels=3,
                            chunk_lanes=16, include_mismatch=False))
        fresh = workload.run_cached(cache)
        hit = workload.run_cached(cache)
        assert not fresh.cache_hit and hit.cache_hit
        assert hit.value.p_fail == fresh.value.p_fail
        assert hit.value.std_error == fresh.value.std_error
        assert hit.value.effective_samples == fresh.value.effective_samples
        np.testing.assert_array_equal(hit.value.shift_sigma,
                                      fresh.value.shift_sigma)
        assert hit.value.n_levels == fresh.value.n_levels
        for rebuilt, original in zip(hit.value.levels, fresh.value.levels,
                                      strict=True):
            assert rebuilt.threshold == original.threshold
            assert rebuilt.acceptance == original.acceptance
            np.testing.assert_array_equal(rebuilt.shift_sigma,
                                          original.shift_sigma)
        # The human-readable ledger is part of the round trip too.
        assert hit.value.describe() == fresh.value.describe()

    def test_rare_event_fingerprint_semantics(self):
        def rare(**overrides):
            options = dict(n_per_level=64, n_final=64, seed=7,
                           chunk_lanes=16)
            options.update(overrides)
            return ota_rare_workload(DESIGN, **options)

        base = rare().fingerprint()
        assert rare().fingerprint() == base
        # Everything shaping the numbers invalidates...
        assert rare(seed=8).fingerprint() != base
        assert rare(n_per_level=65).fingerprint() != base
        assert rare(level_quantile=0.3).fingerprint() != base
        assert rare(chunk_lanes=32).fingerprint() != base
        assert rare(specs=[["gain_db", "ge", 55.0, "dB"]]).fingerprint() \
            != base
        # ...while execution placement does not.
        serial = RareEventWorkload(
            metric_evaluator, C35, SPECS,
            RareEventConfig(n_per_level=48, n_final=48,
                            backend="serial"))
        pooled = RareEventWorkload(
            metric_evaluator, C35, SPECS,
            RareEventConfig(n_per_level=48, n_final=48,
                            backend="thread", workers=4))
        assert serial.fingerprint() == pooled.fingerprint()

    def test_uncacheable_lint_always_runs(self, tmp_path, netlist):
        cache = ResultCache(tmp_path)
        from repro.circuit.parser import parse_netlist
        circuit = parse_netlist(netlist("good_divider"))
        workload = LintWorkload(circuit, "warn")  # no source: opaque
        assert not workload.cacheable
        for _ in range(2):
            assert not workload.run_cached(cache).cache_hit
        assert cache.stats.requests == 0


class TestLintWorkload:
    def test_source_makes_it_cacheable(self, tmp_path, netlist):
        cache = ResultCache(tmp_path)
        workload = lint_workload_from_source(netlist("good_divider"),
                                             "warn")
        assert workload.cacheable
        fresh = workload.run_cached(cache)
        hit = workload.run_cached(cache)
        assert hit.cache_hit
        assert hit.meta == fresh.meta
        assert hit.meta["ok"] is True

    def test_different_netlists_different_keys(self, netlist):
        a = lint_workload_from_source(netlist("good_divider"), "warn")
        b = lint_workload_from_source(netlist("good_rc_ladder"), "warn")
        assert a.key() != b.key()

    def test_strict_gate_raises_through_run(self, netlist):
        workload = lint_workload_from_source(netlist("bad_no_ground"),
                                             "strict")
        with pytest.raises(LintGateError):
            workload.run()

    def test_findings_in_meta(self, netlist):
        workload = lint_workload_from_source(netlist("bad_no_ground"),
                                             "warn")
        meta = workload.run().meta
        assert meta["errors"] >= 1
        assert meta["ok"] is False
        assert any(finding["rule"] == "missing-ground"
                   for finding in meta["findings"])

    def test_parse_errors_surface_at_construction(self):
        with pytest.raises(ParseError):
            lint_workload_from_source("R1 only_one_node 1k\n")


class TestRequestValidation:
    def test_missing_design_parameter(self):
        with pytest.raises(WorkloadError, match="missing parameter"):
            ota_estimate_workload({"w1": 1e-05})

    def test_wrong_design_shape(self):
        with pytest.raises(WorkloadError, match="8 parameters"):
            ota_estimate_workload([1.0, 2.0, 3.0])

    def test_unknown_pdk(self):
        with pytest.raises(WorkloadError, match="process kit"):
            ota_estimate_workload(DESIGN, pdk="sky130")

    def test_malformed_spec_entry(self):
        with pytest.raises(WorkloadError, match="spec entry"):
            ota_estimate_workload(DESIGN, specs=[["gain_db"]])


class TestGuardedProgress:
    def test_forwards_when_not_cancelled(self):
        seen = []
        guarded = guarded_progress(lambda *args: seen.append(args),
                                   lambda: False)
        guarded(3, 10)
        assert seen == [(3, 10)]

    def test_raises_on_cancel(self):
        guarded = guarded_progress(None, lambda: True, "job-x")
        with pytest.raises(JobCancelled, match="job-x"):
            guarded(1, 2)

    def test_no_cancel_returns_progress_unwrapped(self):
        def progress(done, total):
            pass

        assert guarded_progress(progress, None) is progress
        assert guarded_progress(None, None) is None

    def test_cancel_mid_run_preserves_checkpoint(self, tmp_path):
        # Cancelling a streaming workload at a progress boundary must
        # leave the checkpoint of completed rounds behind, so the
        # resubmitted job resumes instead of restarting.
        checkpoint = tmp_path / "cancelled.npz"
        workload = StreamingYieldWorkload(
            metric_evaluator, C35, SPECS,
            MCConfig(n_samples=160, seed=7, chunk_lanes=32))
        calls = []

        def cancel_after_two():
            return len(calls) >= 2

        with pytest.raises(JobCancelled):
            workload.run(checkpoint=checkpoint,
                         progress=lambda done, total: calls.append(done),
                         cancel=cancel_after_two)
        assert checkpoint.exists()
        resumed = workload.run(checkpoint=checkpoint)
        estimate, streaming = resumed.value
        whole = workload.run()
        assert estimate == whole.value[0]
        assert streaming.samples_resumed > 0
