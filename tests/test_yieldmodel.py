"""Yield model tests: variation reduction, guard-banding, targeting.

The headline test rebuilds the paper's own Table 2 as a
:class:`ParetoTableModel` and checks that our algorithm reproduces the
paper's Table 3 numbers (50 dB -> 50.26 dB, 74 deg -> 75.27 deg) exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpecificationError, YieldModelError
from repro.measure import Spec, SpecSet
from repro.tablemodel import ParetoTableModel
from repro.yieldmodel import (CombinedYieldModel, estimate_yield,
                              smooth_along_front, variation_columns,
                              variation_percent, wilson_interval)
from statcheck import smoothed_noise_ratio_bound

# The paper's Table 2 (design, gain, dGain%, PM, dPM%).
PAPER_TABLE2 = np.array([
    [21, 49.78, 0.52, 76.3, 1.50],
    [22, 49.90, 0.52, 76.1, 1.51],
    [24, 49.98, 0.51, 76.0, 1.51],
    [25, 50.17, 0.51, 75.8, 1.52],
    [26, 50.35, 0.50, 75.5, 1.56],
    [27, 50.45, 0.49, 75.3, 1.57],
    [34, 51.06, 0.44, 74.1, 1.69],
    [35, 51.14, 0.51, 74.0, 1.71],
    [37, 51.24, 0.42, 73.8, 1.69],
    [38, 51.62, 0.42, 73.2, 1.68],
])


def paper_model() -> CombinedYieldModel:
    """A combined model built from the paper's own Table 2 data."""
    gain = PAPER_TABLE2[:, 1]
    pm = PAPER_TABLE2[:, 3]
    columns = {
        "gain_db_delta_pct": PAPER_TABLE2[:, 2],
        "pm_deg_delta_pct": PAPER_TABLE2[:, 4],
        # A synthetic designable-parameter column (the paper does not
        # print its lpN values): linear in the front position.
        "l4": np.linspace(2e-6, 4e-6, 10),
    }
    table = ParetoTableModel(np.stack([gain, pm], 1),
                             ("gain_db", "pm_deg"), columns=columns)
    return CombinedYieldModel(table, ("l4",), ro_column=None)


class TestVariationPercent:
    def test_known_value(self):
        samples = np.array([[9.0, 10.0, 11.0]])
        expected = 3.0 * np.std(samples[0], ddof=1) / 10.0 * 100.0
        assert variation_percent(samples)[0] == pytest.approx(expected)

    def test_k_sigma_scaling(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(50.0, 0.1, size=(1, 5000))
        one_sigma = variation_percent(samples, k_sigma=1.0)[0]
        three_sigma = variation_percent(samples, k_sigma=3.0)[0]
        assert three_sigma == pytest.approx(3 * one_sigma)

    def test_nan_rejected(self):
        with pytest.raises(YieldModelError, match="NaN"):
            variation_percent(np.array([[1.0, np.nan]]))

    def test_zero_mean_rejected(self):
        with pytest.raises(YieldModelError, match="zero"):
            variation_percent(np.array([[-1.0, 1.0]]))

    def test_columns_builder(self):
        rng = np.random.default_rng(1)
        samples = {"gain_db": rng.normal(50, 0.1, (4, 100)),
                   "pm_deg": rng.normal(75, 0.4, (4, 100))}
        cols = variation_columns(samples)
        assert set(cols) == {"gain_db_delta_pct", "pm_deg_delta_pct"}
        assert cols["gain_db_delta_pct"].shape == (4,)


class TestSmoothing:
    def test_constant_preserved(self):
        data = np.full(10, 3.3)
        np.testing.assert_allclose(smooth_along_front(data, 5), data)

    def test_window_one_is_identity(self):
        data = np.arange(6, dtype=float)
        np.testing.assert_array_equal(smooth_along_front(data, 1), data)

    def test_reduces_noise_variance(self):
        # The expected ratio for iid noise follows from the per-point
        # averaging widths; the bound adds the 99.9% fluctuation margin.
        rng = np.random.default_rng(2)
        data = 5.0 + rng.normal(0, 1.0, 200)
        smoothed = smooth_along_front(data, 9)
        bound = smoothed_noise_ratio_bound(len(data), 9)
        assert np.std(smoothed) < bound * np.std(data)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.1, 10.0), min_size=3, max_size=40),
           st.integers(min_value=2, max_value=9))
    def test_output_within_data_range(self, values, window):
        data = np.asarray(values)
        smoothed = smooth_along_front(data, window)
        assert np.all(smoothed >= data.min() - 1e-12)
        assert np.all(smoothed <= data.max() + 1e-12)

    def test_linear_trend_preserved_in_interior(self):
        data = np.linspace(0, 10, 21)
        smoothed = smooth_along_front(data, 5)
        np.testing.assert_allclose(smoothed[3:-3], data[3:-3], atol=1e-9)


class TestPaperTable3:
    """Reproduce the paper's Table 3 from its Table 2 data."""

    def test_gain_guard_band(self):
        model = paper_model()
        target = model.guard_band(Spec("gain_db", "ge", 50.0, "dB"))
        # Paper: variation at 50 dB = 0.51 %, new performance 50.26 dB.
        assert target.variation_pct == pytest.approx(0.51, abs=0.02)
        assert target.new_value == pytest.approx(50.26, abs=0.02)

    def test_pm_guard_band(self):
        model = paper_model()
        target = model.guard_band(Spec("pm_deg", "ge", 74.0, "deg"))
        # Paper: variation 1.71 %, new performance 75.27 deg.
        assert target.variation_pct == pytest.approx(1.71, abs=0.05)
        assert target.new_value == pytest.approx(75.27, abs=0.05)

    def test_design_for_specs_selects_guard_banded_gain(self):
        model = paper_model()
        specs = SpecSet([Spec("gain_db", "ge", 50.0, "dB"),
                         Spec("pm_deg", "ge", 74.0, "deg")])
        design = model.design_for_specs(specs)
        assert design.front_position == pytest.approx(50.26, abs=0.02)
        # Nominal PM at that point comfortably exceeds the PM target.
        assert design.nominal_performance["pm_deg"] > 75.2
        assert "l4" in design.parameters


class TestGuardBandArithmetic:
    def test_ge_positive_limit(self):
        model = paper_model()
        target = model.guard_band(Spec("gain_db", "ge", 51.0))
        variation = model.variation_at("gain_db", 51.0)
        assert target.new_value == pytest.approx(
            51.0 * (1 + variation / 100.0))

    def test_le_spec_shifts_down(self):
        # For a <= spec the guard band must make the limit *smaller*.
        model = paper_model()
        target = model.guard_band(Spec("pm_deg", "le", 75.0))
        assert target.new_value < 75.0

    def test_spec_outside_front_clamps_variation(self):
        model = paper_model()
        target = model.guard_band(Spec("gain_db", "ge", 45.0))
        assert target.variation_pct == pytest.approx(
            model.variation_at("gain_db", 49.78), abs=0.02)

    def test_unknown_spec_name(self):
        with pytest.raises(SpecificationError):
            paper_model().guard_band(Spec("noise", "ge", 1.0))


class TestDesignForSpecs:
    def test_infeasible_gain(self):
        model = paper_model()
        specs = SpecSet([Spec("gain_db", "ge", 51.6, "dB"),
                         Spec("pm_deg", "ge", 74.0, "deg")])
        # Guard-banded gain > front max -> no feasible point.
        with pytest.raises(YieldModelError, match="no point|exceeds"):
            model.design_for_specs(specs)

    def test_conflicting_specs(self):
        model = paper_model()
        specs = SpecSet([Spec("gain_db", "ge", 51.0, "dB"),
                         Spec("pm_deg", "ge", 76.0, "deg")])
        with pytest.raises(YieldModelError):
            model.design_for_specs(specs)

    def test_loose_pm_spec_ignored(self):
        model = paper_model()
        specs = SpecSet([Spec("gain_db", "ge", 50.0, "dB"),
                         Spec("pm_deg", "ge", 60.0, "deg")])
        design = model.design_for_specs(specs)
        assert design.front_position == pytest.approx(50.26, abs=0.02)

    def test_missing_variation_column_rejected(self):
        table = ParetoTableModel(
            np.array([[1.0, 2.0], [2.0, 1.0]]), ("a", "b"),
            columns={"p": np.array([1.0, 2.0])})
        with pytest.raises(YieldModelError, match="variation column"):
            CombinedYieldModel(table, ("p",))

    def test_missing_parameter_column_rejected(self):
        table = ParetoTableModel(
            np.array([[1.0, 2.0], [2.0, 1.0]]), ("a", "b"),
            columns={"a_delta_pct": np.ones(2), "b_delta_pct": np.ones(2)})
        with pytest.raises(YieldModelError, match="parameter column"):
            CombinedYieldModel(table, ("p",))


class TestAliasesAndRo:
    def test_objective_aliases(self):
        model = paper_model()
        assert model.objective_aliases == ("gain", "pm")

    def test_default_ro_without_column(self):
        assert paper_model().nominal_ro() == 1e6


class TestWilson:
    def test_perfect_yield_interval(self):
        lo, hi = wilson_interval(500, 500)
        assert hi == 1.0
        assert 0.99 < lo < 1.0

    def test_zero_yield(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert hi < 0.05

    def test_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_erfinv_against_known_z(self):
        # z for 95% two-sided is 1.959964.
        from repro.yieldmodel.estimator import _erfinv
        z = np.sqrt(2.0) * _erfinv(0.95)
        assert z == pytest.approx(1.959964, abs=1e-5)


class TestEstimateYield:
    def test_full_population(self):
        specs = SpecSet([Spec("gain_db", "ge", 50.0)])
        estimate = estimate_yield({"gain_db": np.full(200, 51.0)}, specs)
        assert estimate.fraction == 1.0
        assert estimate.percent == 100.0
        assert "yield 200/200" in estimate.describe()

    def test_partial_and_per_spec(self):
        specs = SpecSet([Spec("a", "ge", 0.0), Spec("b", "ge", 0.0)])
        perf = {"a": np.array([1.0, -1.0, 1.0, 1.0]),
                "b": np.array([1.0, 1.0, -1.0, 1.0])}
        estimate = estimate_yield(perf, specs)
        assert estimate.passed == 2
        assert estimate.per_spec_pass == {"a": 3, "b": 3}

    def test_interval_exposed(self):
        specs = SpecSet([Spec("a", "ge", 0.0)])
        estimate = estimate_yield({"a": np.ones(500)}, specs)
        lo, hi = estimate.interval
        assert lo > 0.99


class TestPublicSurfaceDocstrings:
    """Every ``__all__`` export of the yieldmodel packages (and the
    public members of exported classes) must carry a first-line summary:
    the api.md generator renders a blank for anything that lacks one."""

    MODULES = (
        "repro.yieldmodel",
        "repro.yieldmodel.cornercheck",
        "repro.yieldmodel.estimator",
        "repro.yieldmodel.importance",
        "repro.yieldmodel.targeting",
        "repro.yieldmodel.variation",
    )

    def _exports(self):
        import importlib
        for module_name in self.MODULES:
            module = importlib.import_module(module_name)
            for export in module.__all__:
                yield module_name, export, getattr(module, export)

    def test_every_export_has_a_summary_line(self):
        import inspect
        missing = []
        for module_name, export, obj in self._exports():
            if not (inspect.isclass(obj) or callable(obj)):
                continue  # data constants are rendered by repr
            doc = inspect.getdoc(obj)
            if not doc or not doc.strip().splitlines()[0].strip():
                missing.append(f"{module_name}.{export}")
        assert not missing, f"exports without docstrings: {missing}"

    def test_every_public_class_member_has_a_summary_line(self):
        import inspect
        missing = []
        for module_name, export, obj in self._exports():
            if not inspect.isclass(obj):
                continue
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if not (callable(member) or isinstance(member, property)):
                    continue
                if not inspect.getdoc(member):
                    missing.append(f"{module_name}.{export}.{attr}")
        assert not missing, f"class members without docstrings: {missing}"
