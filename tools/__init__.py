# Repository tooling package (``python -m tools.reprolint``,
# ``python tools/gen_api_docs.py``).  Not shipped with the library.
