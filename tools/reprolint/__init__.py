"""reprolint: AST-based invariant checks over the repro source tree.

The netlist linter (:mod:`repro.lint`) checks circuits; reprolint turns
the same registry/report architecture on the codebase itself, statically
enforcing the contracts the runtime silently depends on -- seeded RNG
streams, deterministic cache fingerprints, fingerprint completeness,
lock discipline, telemetry hygiene and error handling.

Run it as ``python -m tools.reprolint src/repro`` (see
``docs/static-analysis.md`` for the rule catalogue and the
suppression/baseline workflow).
"""

from .engine import (ModuleContext, Suppression, analyze, load_baseline,
                     parse_modules, walk_paths)
from .report import SEVERITIES, Finding, Report
from .rules import RULES, Rule, iter_rules, rule, run_rules

__all__ = [
    "ModuleContext", "Suppression", "analyze", "load_baseline",
    "parse_modules", "walk_paths",
    "SEVERITIES", "Finding", "Report",
    "RULES", "Rule", "iter_rules", "rule", "run_rules",
]
