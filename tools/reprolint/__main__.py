"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Exit codes follow the ``repro lint`` convention: 0 when the tree is
clean (warnings tolerated unless ``--strict``), 1 when any error-level
finding survives suppressions and the baseline, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import analyze, load_baseline
from .rules import iter_rules

#: Exemptions that cannot live next to the code (ships empty: every
#: current exemption is an inline, reasoned suppression).
DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="statically check the repro contracts (RNG, "
                    "fingerprint, lock, telemetry, error handling)")
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyse (default: src/repro)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text")
    parser.add_argument(
        "--only", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=str(DEFAULT_BASELINE),
        help="baseline file of known exemptions "
             "(default: %(default)s; pass '' to disable)")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write current findings as the new baseline and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures too")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for lint_rule in iter_rules():
            print(f"{lint_rule.rule_id:28s} {lint_rule.severity:8s} "
                  f"{lint_rule.summary}")
        return 0

    only = None
    if args.only:
        only = [part.strip() for part in args.only.split(",")
                if part.strip()]
    try:
        baseline = load_baseline(args.baseline) if args.baseline else []
        report = analyze(args.paths, only=only, baseline_entries=baseline,
                         source=" ".join(args.paths))
    except (ValueError, OSError) as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        entries = [f.baseline_entry() for f in report.sorted_findings()]
        Path(args.write_baseline).write_text(
            json.dumps({"entries": entries}, indent=2) + "\n")
        print(f"wrote {len(entries)} baseline entr"
              f"{'y' if len(entries) == 1 else 'ies'} to "
              f"{args.write_baseline}")
        return 0

    print(report.render_json() if args.json else report.render_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
