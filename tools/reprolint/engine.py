"""The reprolint module walker: files -> ASTs -> rule runs -> report.

The engine mirrors the :mod:`repro.lint` architecture one level up:
where the netlist linter parses circuits and hands a ``LintContext`` to
its rule registry, this engine parses Python source files into
:class:`ModuleContext` objects (AST, import-alias table, suppression
comments) and hands each to the :mod:`tools.reprolint.rules` registry.

Two escape hatches keep intentional contract exceptions visible
instead of silent:

* an inline suppression comment with a **mandatory reason**::

      self.chunk_lanes = chunk_lanes  # reprolint: disable=fingerprint-completeness -- no random streams

  A standalone comment line suppresses the next statement line.
  Reason-less or unknown-rule suppressions are themselves findings
  (the ``suppression-hygiene`` rule).

* a JSON **baseline file** of ``{rule, path, locus}`` entries for
  exemptions that cannot live next to the code; matched findings are
  counted but not reported.  ``--write-baseline`` regenerates it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from .report import Finding, Report

__all__ = ["ModuleContext", "Suppression", "analyze", "load_baseline",
           "parse_modules", "walk_paths"]

#: ``# reprolint: disable=rule-a,rule-b -- reason`` (reason mandatory;
#: its absence is reported by the ``suppression-hygiene`` rule).
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+?)"
    r"\s*(?:--\s*(?P<reason>\S.*))?$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: disable=...`` comment."""

    line: int                 #: comment's own source line (1-based)
    target: int               #: statement line the suppression covers
    rules: tuple[str, ...]
    reason: str

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.target and finding.rule in self.rules


@dataclass
class ModuleContext:
    """Everything a reprolint rule may inspect about one source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)
    #: local name -> fully dotted module/object it resolves to
    #: (``np`` -> ``numpy``, ``default_rng`` -> ``numpy.random.default_rng``).
    aliases: dict[str, str] = field(default_factory=dict)

    # -- name resolution ---------------------------------------------------
    def dotted(self, node: ast.AST) -> str:
        """``a.b.c`` for a Name/Attribute chain (empty when not one)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> str:
        """Like :meth:`dotted`, with the head import alias expanded."""
        dotted = self.dotted(node)
        if not dotted:
            return ""
        head, _, rest = dotted.partition(".")
        expanded = self.aliases.get(head, head)
        return f"{expanded}.{rest}" if rest else expanded

    def finding(self, rule: str, severity: str, message: str,
                node: ast.AST | None = None, *, line: int | None = None,
                locus: str = "", hint: str = "") -> Finding:
        """A :class:`Finding` located in this module."""
        if line is None:
            line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(rule, severity, message, path=self.relpath,
                       line=line, col=col, locus=locus, hint=hint)


def _alias_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from the module's import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.partition(".")[0]
                target = name.name if name.asname else \
                    name.name.partition(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _parse_suppressions(source: str) -> list[Suppression]:
    """Every ``# reprolint: disable`` comment, with its target line.

    A suppression on a code line covers that line; a standalone comment
    line covers the next line that carries code.  Malformed comments
    (no reason) still parse -- with ``reason=""`` -- so the
    ``suppression-hygiene`` rule can report them precisely.
    """
    lines = source.splitlines()
    out: list[Suppression] = []
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group(1).split(",")
                      if part.strip())
        reason = (match.group("reason") or "").strip()
        target = number
        if text.lstrip().startswith("#"):
            # Standalone comment: cover the next code-bearing line.
            for offset, following in enumerate(lines[number:], start=1):
                stripped = following.strip()
                if stripped and not stripped.startswith("#"):
                    target = number + offset
                    break
        out.append(Suppression(line=number, target=target, rules=rules,
                               reason=reason))
    return out


# -- walking ---------------------------------------------------------------
def walk_paths(paths) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files kept, dirs recursed)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts))
        else:
            files.append(path)
    return files


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_modules(paths) -> tuple[list[ModuleContext], list[Finding]]:
    """Parse every file into a context; unparsable files become findings."""
    modules: list[ModuleContext] = []
    errors: list[Finding] = []
    for path in walk_paths(paths):
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            errors.append(Finding(
                "parse-error", "error",
                f"cannot analyse {relpath}: {exc}",
                path=relpath, line=line,
                hint="reprolint needs parseable Python; fix the syntax "
                     "error (or drop the file from the scan set)"))
            continue
        modules.append(ModuleContext(
            path=path, relpath=relpath, source=source, tree=tree,
            suppressions=_parse_suppressions(source),
            aliases=_alias_table(tree)))
    return modules, errors


# -- baseline --------------------------------------------------------------
def load_baseline(path) -> list[dict]:
    """The baseline's ``{rule, path, locus}`` entries (missing file: none)."""
    path = Path(path)
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    entries = payload.get("entries", payload) if isinstance(payload, dict) \
        else payload
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} must hold a list of entries")
    return entries


def _baselined(finding: Finding, entries: list[dict]) -> bool:
    for entry in entries:
        if (entry.get("rule") == finding.rule
                and entry.get("locus", "") == finding.locus
                and finding.path.endswith(entry.get("path", ""))):
            return True
    return False


# -- the driver ------------------------------------------------------------
def analyze(paths, *, only=None, baseline_entries=None,
            source: str = "") -> Report:
    """Run the (selected) rules over every module under ``paths``.

    Suppression comments (with a reason) and baseline entries filter
    findings out of the report; both are counted in the summary so a
    clean run still says how many exemptions it relied on.
    """
    from .rules import run_rules  # late: rules import this module

    modules, parse_errors = parse_modules(paths)
    report = Report(source=source or ", ".join(str(p) for p in paths),
                    files_scanned=len(modules))
    raw: list[tuple[ModuleContext | None, Finding]] = [
        (None, finding) for finding in parse_errors]
    for module in modules:
        for finding in run_rules(module, only=only):
            raw.append((module, finding))
    entries = baseline_entries or []
    for module, finding in raw:
        if module is not None and any(
                s.covers(finding) and s.reason
                for s in module.suppressions):
            report.suppressed += 1
            continue
        if entries and _baselined(finding, entries):
            report.baselined += 1
            continue
        report.add(finding)
    from .rules import iter_rules
    report.rules_run = tuple(rule.rule_id for rule in iter_rules(only))
    return report
