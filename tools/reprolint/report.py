"""Structured reprolint findings and the report they aggregate into.

A :class:`Finding` is one diagnostic produced by a reprolint rule: the
rule id, a severity, the ``path:line`` locus in the analysed source
tree, a human-readable message and a fix hint.  A :class:`Report`
collects the findings of one analysis run and renders them as text
(for the CLI and CI logs) or JSON (for machine consumption), and maps
onto the same process exit-code convention ``repro lint`` uses:

* no findings at all, or info only -- clean, exit 0;
* warnings -- exit 0 normally, nonzero under ``--strict``;
* errors -- always nonzero (the tree violates a determinism, RNG,
  lock or telemetry contract the runtime depends on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["SEVERITIES", "Finding", "Report"]

#: Recognised severities, most severe first.
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a reprolint rule.

    Attributes
    ----------
    rule:
        Rule identifier (e.g. ``"rng-discipline"``); see
        ``docs/static-analysis.md`` for the catalogue.
    severity:
        ``"error"`` (a contract the runtime depends on is violated),
        ``"warning"`` (suspicious but survivable) or ``"info"``.
    message:
        Human-readable, single-sentence description of the problem.
    path:
        Analysed file, relative to the working directory when possible.
    line, col:
        1-based source line and 0-based column of the offending node.
    locus:
        Stable symbolic location (``Class.method`` or ``Class.field``);
        what baseline entries match against, so baselines survive
        unrelated edits that shift line numbers.
    hint:
        A short "how to fix it" suggestion.
    """

    rule: str
    severity: str
    message: str
    path: str = ""
    line: int = 0
    col: int = 0
    locus: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r} "
                             f"(expected one of {SEVERITIES})")

    def render(self) -> str:
        """One-line text rendering of the finding."""
        where = f"{self.path}:{self.line}" if self.path else f"{self.line}"
        parts = [f"{where}: {self.severity}[{self.rule}]: {self.message}"]
        if self.hint:
            parts.append(f"    hint: {self.hint}")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "locus": self.locus,
            "hint": self.hint,
        }

    def baseline_entry(self) -> dict:
        """The stable identity a baseline file records for this finding."""
        return {"rule": self.rule, "path": self.path, "locus": self.locus}


@dataclass
class Report:
    """All findings of one reprolint run over one source tree."""

    source: str = ""
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()
    suppressed: int = 0
    baselined: int = 0

    def add(self, finding: Finding) -> None:
        """Append a finding."""
        self.findings.append(finding)

    def extend(self, findings) -> None:
        """Append several findings."""
        self.findings.extend(findings)

    def sorted_findings(self) -> list[Finding]:
        """Findings ordered by file, then line, then rule id."""
        return sorted(self.findings,
                      key=lambda f: (f.path, f.line, f.rule))

    # -- severity summary ---------------------------------------------------
    def count(self, severity: str) -> int:
        """Number of findings at ``severity``."""
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def has_errors(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    @property
    def has_warnings(self) -> bool:
        return any(f.severity == "warning" for f in self.findings)

    def ok(self, *, strict: bool = False) -> bool:
        """``True`` when the tree passed: no errors, and no warnings
        either when ``strict``."""
        if self.has_errors:
            return False
        return not (strict and self.has_warnings)

    def exit_code(self, *, strict: bool = False) -> int:
        """Process exit code: 0 clean (warnings tolerated unless
        ``strict``), 1 otherwise."""
        return 0 if self.ok(strict=strict) else 1

    def summary(self) -> str:
        """One-line pass/fail summary."""
        label = self.source or "tree"
        scanned = f"{self.files_scanned} file(s)"
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        tail = f" ({', '.join(extras)})" if extras else ""
        if not self.findings:
            return f"{label}: clean ({scanned}){tail}"
        counts = ", ".join(
            f"{self.count(s)} {s}{'s' if self.count(s) != 1 else ''}"
            for s in SEVERITIES if self.count(s))
        return f"{label}: {counts} in {scanned}{tail}"

    # -- renderers ----------------------------------------------------------
    def render_text(self) -> str:
        """Multi-line human-readable report (findings + summary)."""
        lines = [f.render() for f in self.sorted_findings()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole report."""
        return {
            "source": self.source,
            "ok": self.ok(),
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "counts": {s: self.count(s) for s in SEVERITIES},
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def render_json(self, *, indent: int = 2) -> str:
        """JSON rendering of the report."""
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        return self.render_text()
