"""The reprolint rule registry and the built-in contract rules.

A rule is a generator function over a :class:`~.engine.ModuleContext`
yielding :class:`~.report.Finding` s, registered with the :func:`rule`
decorator -- the same ordered, extensible registry pattern as
:mod:`repro.lint.rules`, turned on the codebase itself.

Built-in catalogue (see ``docs/static-analysis.md`` for examples):

==========================  ========  ==================================
id                          severity  enforces
==========================  ========  ==================================
``rng-discipline``          error     all randomness flows through the
                                      seeded ``repro.mc.sampler``
                                      stream helpers
``fingerprint-determinism`` error     no wall clock / uuid / urandom /
                                      unsorted JSON in fingerprinted
                                      paths
``fingerprint-completeness`` error    every ``Workload`` field is read
                                      by ``config()`` (or exempt)
``lock-discipline``         error     lock-protected fields are never
                                      touched outside the lock
``telemetry-hygiene``       error     spans open via ``with``; metric/
                                      span names follow the documented
                                      taxonomy
``error-contract``          error     no bare ``except:`` or silently
                                      swallowed broad excepts
``suppression-hygiene``     error     every suppression names known
                                      rules and carries a reason
==========================  ========  ==================================
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from .engine import ModuleContext
from .report import SEVERITIES, Finding

__all__ = ["Rule", "RULES", "rule", "iter_rules", "run_rules"]


@dataclass(frozen=True)
class Rule:
    """A registered rule: identifier, default severity, check function."""

    rule_id: str
    severity: str
    summary: str
    check: Callable[[ModuleContext], Iterator[Finding]]


#: Ordered registry of every known rule, id -> :class:`Rule`.
RULES: dict[str, Rule] = {}


def rule(rule_id: str, severity: str, summary: str):
    """Register a reprolint rule; decorator over a generator of findings."""
    if severity not in SEVERITIES:
        raise ValueError(f"rule {rule_id!r}: unknown severity {severity!r}")

    def decorator(check):
        if rule_id in RULES:
            raise ValueError(f"duplicate reprolint rule id {rule_id!r}")
        RULES[rule_id] = Rule(rule_id, severity, summary, check)
        return check
    return decorator


def iter_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """The registered rules, optionally restricted to ids in ``only``."""
    if only is None:
        return list(RULES.values())
    unknown = set(only) - set(RULES)
    if unknown:
        raise ValueError(f"unknown reprolint rule id(s): {sorted(unknown)}")
    wanted = set(only)
    return [r for r in RULES.values() if r.rule_id in wanted]


def run_rules(ctx: ModuleContext,
              only: Iterable[str] | None = None) -> list[Finding]:
    """Run the (selected) rules over ``ctx`` and collect their findings."""
    findings: list[Finding] = []
    for lint_rule in iter_rules(only):
        findings.extend(lint_rule.check(ctx))
    return findings


# -- shared AST helpers -----------------------------------------------------
def _self_field(node: ast.AST) -> str:
    """The first attribute above ``self`` in an access chain, or ``""``.

    ``self._jobs[k]`` -> ``_jobs``; ``self.stats.misses`` -> ``stats``;
    anything not rooted at a ``self`` name -> ``""``.
    """
    field = ""
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            field = node.attr
            node = node.value
        else:
            break
    return field if isinstance(node, ast.Name) and node.id == "self" else ""


def _identifiers(node: ast.AST) -> set[str]:
    """Every Name id and Attribute attr appearing under ``node``."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {item.name: item for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _in_package(ctx: ModuleContext, *names: str) -> bool:
    """Whether the module lives under any directory named in ``names``."""
    from pathlib import PurePosixPath
    parts = PurePosixPath(ctx.relpath).parts
    return any(name in parts for name in names)


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

#: ``np.random.*`` members that construct deterministic generators (the
#: sampler helpers build on them); every other member is a draw from the
#: shared global stream and breaks the child-stream contract.
_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64"})


@rule("rng-discipline", "error",
      "randomness must flow through the seeded child-stream helpers")
def _check_rng_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name == "random" or name.name.startswith("random."):
                    yield ctx.finding(
                        "rng-discipline", "error",
                        "stdlib 'random' imported: its global state is "
                        "unseeded and unshardable, so results are not "
                        "reproducible",
                        node,
                        hint="draw from repro.mc.sampler.stream(seed, key) "
                             "/ child_streams instead")
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and (
                    node.module == "random"
                    or node.module.startswith("random.")):
                yield ctx.finding(
                    "rng-discipline", "error",
                    "stdlib 'random' imported: its global state is "
                    "unseeded and unshardable, so results are not "
                    "reproducible",
                    node,
                    hint="draw from repro.mc.sampler.stream(seed, key) "
                         "/ child_streams instead")
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if not resolved.startswith("numpy.random."):
                continue
            member = resolved.split(".", 2)[2]
            if member not in _RNG_CONSTRUCTORS:
                yield ctx.finding(
                    "rng-discipline", "error",
                    f"naked np.random.{member}() draws from the shared "
                    f"module-level stream: results depend on call order "
                    f"across the whole process",
                    node,
                    hint="take an np.random.Generator argument and draw "
                         "from it; construct generators only via "
                         "repro.mc.sampler.stream / child_streams")
            elif member == "default_rng" and not node.args \
                    and not node.keywords:
                yield ctx.finding(
                    "rng-discipline", "error",
                    "default_rng() without a seed is entropy-seeded: "
                    "every run draws a different stream",
                    node,
                    hint="pass an explicit seed or SeedSequence "
                         "(repro.mc.sampler.stream derives one from "
                         "(seed, key))")


# ---------------------------------------------------------------------------
# fingerprint-determinism
# ---------------------------------------------------------------------------

#: Calls whose value differs between two otherwise-identical runs --
#: poison inside anything a cache fingerprint is derived from.
_NONDETERMINISTIC_CALLS = {
    "time.time": "the wall clock",
    "time.time_ns": "the wall clock",
    "datetime.datetime.now": "the wall clock",
    "datetime.datetime.utcnow": "the wall clock",
    "datetime.date.today": "the wall clock",
    "os.urandom": "the OS entropy pool",
    "uuid.uuid1": "the host MAC/clock",
    "uuid.uuid4": "the OS entropy pool",
    "secrets.token_bytes": "the OS entropy pool",
    "secrets.token_hex": "the OS entropy pool",
    "secrets.token_urlsafe": "the OS entropy pool",
}

#: Function/method names whose bodies participate in fingerprints
#: wherever they are defined (``Workload.config`` implementations, the
#: canonicalisation helpers themselves).
_FINGERPRINT_FUNCTIONS = frozenset({
    "config", "fingerprint", "canonicalize", "canonical_fingerprint"})


def _fingerprint_scopes(ctx: ModuleContext) -> list[ast.AST]:
    """The AST regions the determinism rule polices in this module.

    The ``cache`` and ``workload`` packages are fingerprint-
    participating end to end; elsewhere only the bodies of
    ``config()``/``fingerprint()``-style functions are.
    """
    if _in_package(ctx, "cache", "workload"):
        return [ctx.tree]
    return [node for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in _FINGERPRINT_FUNCTIONS]


@rule("fingerprint-determinism", "error",
      "fingerprinted paths must not read clocks, entropy or unsorted JSON")
def _check_fingerprint_determinism(ctx: ModuleContext) -> Iterator[Finding]:
    for scope in _fingerprint_scopes(ctx):
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            source = _NONDETERMINISTIC_CALLS.get(resolved)
            if source is not None:
                yield ctx.finding(
                    "fingerprint-determinism", "error",
                    f"{resolved}() reads {source} inside a fingerprint-"
                    f"participating path: two identical configs would "
                    f"fingerprint differently (or two different runs "
                    f"collide)",
                    node,
                    hint="fingerprints must be pure functions of the "
                         "config; derive identity from canonicalized "
                         "fields only")
            elif resolved == "json.dumps":
                sort_keys = next(
                    (kw for kw in node.keywords
                     if kw.arg == "sort_keys"), None)
                if sort_keys is None or (
                        isinstance(sort_keys.value, ast.Constant)
                        and sort_keys.value.value is not True):
                    yield ctx.finding(
                        "fingerprint-determinism", "error",
                        "json.dumps() without sort_keys=True in a "
                        "fingerprint-participating path: dict insertion "
                        "order leaks into the canonical text",
                        node,
                        hint="pass sort_keys=True (see "
                             "repro.cache.fingerprint)")


# ---------------------------------------------------------------------------
# fingerprint-completeness
# ---------------------------------------------------------------------------

#: Instance fields that are *execution* state, not result-shaping
#: configuration: the exec determinism contract keeps backend/workers
#: out of fingerprints, evaluator identity flows through
#: ``evaluator_id``, and ledgers/caches only observe.
_EXEC_ONLY_FIELDS = frozenset({"backend", "workers", "cacheable", "ledger",
                               "cache"})


def _is_workload_class(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        dotted = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else "")
        if dotted.endswith("Workload"):
            return True
    return False


@rule("fingerprint-completeness", "error",
      "every Workload field must be read by config() (or exempt)")
def _check_fingerprint_completeness(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef) or not _is_workload_class(cls):
            continue
        methods = _methods(cls)
        init = methods.get("__init__")
        config = methods.get("config")
        if init is None or config is None:
            continue
        config_names = _identifiers(config)
        fields: dict[str, ast.AST] = {}
        evaluator_feed: set[str] = set()
        for stmt in ast.walk(init):
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    if target.attr == "evaluator_id":
                        evaluator_feed |= _identifiers(stmt.value)
                    fields.setdefault(target.attr, target)
        for name, target in fields.items():
            if name.startswith(("_", "evaluator")) \
                    or name in _EXEC_ONLY_FIELDS:
                continue
            if name in config_names or name in evaluator_feed:
                continue
            yield ctx.finding(
                "fingerprint-completeness", "error",
                f"{cls.name}.{name} is assigned in __init__ but never "
                f"read by config(): a field that shapes the result and "
                f"is missing from the fingerprint serves stale cache "
                f"entries",
                target, locus=f"{cls.name}.{name}",
                hint="emit the field from config(), fold it into the "
                     "evaluator_id digest, or suppress with a reason if "
                     "it provably cannot change the numbers")


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

#: Method names that mutate their receiver in place -- calling one on a
#: lock-protected field is a write.
_MUTATORS = frozenset({"append", "appendleft", "add", "update", "pop",
                       "popitem", "remove", "discard", "clear", "extend",
                       "insert", "setdefault"})

_LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock"})


def _lock_fields(cls: ast.ClassDef, ctx: ModuleContext) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.resolve(node.value.func) in _LOCK_TYPES:
                for target in node.targets:
                    field = _self_field(target)
                    if field:
                        locks.add(field)
    return locks


def _chain_spine(node: ast.AST) -> set[int]:
    """Node ids along an access chain's spine (``self.a[k].b`` ->
    {Subscript, both Attributes}); subscript indices are not spine."""
    spine: set[int] = set()
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        spine.add(id(node))
        node = node.value
    return spine


def _scan_method(method: ast.AST, locks: set[str]):
    """Scan one method body for ``self.X`` traffic.

    Returns ``(accesses, calls)`` where each access is
    ``(field, node, is_write, under_lock)`` and each call is
    ``(method_name, under_lock)`` for ``self.method(...)`` invocations.
    Nested function bodies (closures, lambdas) run later, outside the
    lexical lock scope, so they are treated as not-under-lock.
    """
    accesses: list[tuple[str, ast.AST, bool, bool]] = []
    calls: list[tuple[str, bool]] = []
    consumed: set[int] = set()

    def held(node: ast.With) -> bool:
        return any(_self_field(item.context_expr) in locks
                   for item in node.items)

    def visit(node: ast.AST, under: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            under = under or held(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            under = False
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(
                node, (ast.Assign, ast.Delete)) else [node.target]
            for target in targets:
                field = _self_field(target)
                if field:
                    accesses.append((field, target, True, under))
                    consumed.update(_chain_spine(target))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            if isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                calls.append((node.func.attr, under))
                consumed.add(id(node.func))
            elif node.func.attr in _MUTATORS:
                field = _self_field(node.func.value)
                if field:
                    accesses.append((field, node.func, True, under))
                    consumed.update(_chain_spine(node.func))

        if isinstance(node, ast.Attribute) and id(node) not in consumed:
            field = _self_field(node)
            if field:
                accesses.append((field, node, False, under))
                consumed.update(_chain_spine(node))
        for child in ast.iter_child_nodes(node):
            visit(child, under)

    visit(method, False)
    return accesses, calls


def _lock_held_helpers(methods: dict[str, ast.FunctionDef],
                       scans: dict[str, tuple]) -> set[str]:
    """Private helpers whose every in-class call site holds the lock.

    ``emit()`` taking the lock and delegating to ``self._rotate()`` is
    correct code; a purely lexical rule would flag the helper's body.
    Fixpoint: a ``_private`` (non-dunder) method is lock-held when it
    is called at least once and only ever from under the lock -- either
    lexically or from another lock-held method.  Calls from
    ``__init__`` count as safe (construction is single-threaded).
    """
    held: set[str] = set()
    candidates = {name for name in methods
                  if name.startswith("_") and not name.startswith("__")}
    while True:
        grew = False
        for name in candidates - held:
            sites = [(caller, under)
                     for caller, (_accesses, calls) in scans.items()
                     for callee, under in calls if callee == name]
            if sites and all(under or caller == "__init__"
                             or caller in held
                             for caller, under in sites):
                held.add(name)
                grew = True
        if not grew:
            return held


@rule("lock-discipline", "error",
      "fields mutated under a lock must never be touched outside it")
def _check_lock_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_fields(cls, ctx)
        if not locks:
            continue
        methods = _methods(cls)
        scans = {name: _scan_method(method, locks)
                 for name, method in methods.items()}
        held_helpers = _lock_held_helpers(methods, scans)

        def effective(name: str, under: bool) -> bool:
            return under or name in held_helpers

        # Pass 1: a field written under the lock anywhere (outside
        # construction) is lock-protected.
        protected: set[str] = set()
        for name, (accesses, _calls) in scans.items():
            if name == "__init__":
                continue
            for field, _node, is_write, under in accesses:
                if is_write and effective(name, under) \
                        and field not in locks:
                    protected.add(field)
        if not protected:
            continue
        # Pass 2: any unlocked access to a protected field is a race.
        for name, (accesses, _calls) in scans.items():
            if name == "__init__":
                continue
            for field, node, is_write, under in accesses:
                if field in protected and not effective(name, under):
                    action = "written" if is_write else "read"
                    yield ctx.finding(
                        "lock-discipline", "error",
                        f"{cls.name}.{field} is {action} in {name}() "
                        f"without holding the lock, but is mutated "
                        f"under `with self.{sorted(locks)[0]}:` "
                        f"elsewhere -- a torn read/lost update race",
                        node, locus=f"{cls.name}.{name}.{field}",
                        hint="take the lock around the access (or don't "
                             "share the field across threads)")


# ---------------------------------------------------------------------------
# telemetry-hygiene
# ---------------------------------------------------------------------------

#: The documented span/metric taxonomy (docs/observability.md is the
#: narrative source; this table is the machine-checked mirror -- update
#: both together).
_SPAN_NAMES = frozenset({
    "flow.build", "flow.filter", "flow.stage", "job.run", "exec.run",
    "mc.single", "mc.points", "mc.stream", "mc.chunk", "yield.streaming",
    "yield.importance.pilot", "yield.importance.main", "rare.level",
    "rare.final", "surrogate.train", "surrogate.batch"})
_SPAN_PREFIXES = ("workload.",)
_COUNTER_NAMES = frozenset({
    "cache.hits", "cache.misses", "cache.stores", "cache.evictions",
    "exec.tasks", "mc.lanes", "mc.stream.rounds", "estimator.simulations",
    "surrogate.evaluations"})
_COUNTER_PREFIXES = ("jobs.",)
_GAUGE_NAMES = frozenset({"cache.bytes", "cache.entries"})
_GAUGE_PREFIXES = ()
_HISTOGRAM_PREFIXES = ("cache.", "jobs.", "exec.", "mc.", "estimator.",
                       "surrogate.", "flow.")

_TAXONOMY = {
    "span": (_SPAN_NAMES, _SPAN_PREFIXES),
    "counter_add": (_COUNTER_NAMES, _COUNTER_PREFIXES),
    "gauge_set": (_GAUGE_NAMES, _GAUGE_PREFIXES),
    "histogram_observe": (frozenset(), _HISTOGRAM_PREFIXES),
}


def _is_telemetry_base(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether an attribute base is the telemetry module (or a late-
    import shim like ``_telemetry()``)."""
    if isinstance(node, ast.Call):
        return ctx.dotted(node.func).endswith("telemetry")
    return ctx.resolve(node).split(".")[-1] == "telemetry"


def _name_conforms(name: str, allowed: frozenset, prefixes) -> bool:
    return name in allowed or any(name.startswith(p) for p in prefixes)


@rule("telemetry-hygiene", "error",
      "spans open via `with`; metric/span names follow the taxonomy")
def _check_telemetry_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    if _in_package(ctx, "telemetry"):
        return  # the subsystem itself implements the primitives
    with_contexts = {
        id(item.context_expr)
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.With, ast.AsyncWith))
        for item in node.items}
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TAXONOMY
                and _is_telemetry_base(ctx, node.func.value)):
            continue
        kind = node.func.attr
        if kind == "span" and id(node) not in with_contexts:
            yield ctx.finding(
                "telemetry-hygiene", "error",
                "telemetry.span(...) opened outside a `with` block: the "
                "span is never closed and the trace tree dangles",
                node,
                hint="use `with telemetry.span(name, ...):` so close "
                     "fires on every exit path")
        if not node.args:
            continue
        first = node.args[0]
        allowed, prefixes = _TAXONOMY[kind]
        name = None
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
            ok = _name_conforms(name, allowed, prefixes)
        elif isinstance(first, ast.JoinedStr) and first.values \
                and isinstance(first.values[0], ast.Constant):
            name = str(first.values[0].value)
            # A dynamic name conforms when its static prefix can only
            # complete into taxonomy names.
            ok = (any(name.startswith(p) or p.startswith(name)
                      for p in prefixes)
                  or any(full.startswith(name) for full in allowed))
        else:
            continue  # fully dynamic: statically unknowable
        if not ok:
            yield ctx.finding(
                "telemetry-hygiene", "error",
                f"telemetry {kind.replace('_', ' ')} name {name!r} is "
                f"not in the documented taxonomy "
                f"(docs/observability.md)",
                node,
                hint="reuse an existing cache.*/jobs.*/exec.*/mc.*/"
                     "estimator.*/surrogate.* name, or extend the "
                     "taxonomy in docs/observability.md AND this rule")


# ---------------------------------------------------------------------------
# error-contract
# ---------------------------------------------------------------------------

def _is_trivial_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def _names_broad(ctx: ModuleContext, node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_names_broad(ctx, element) for element in node.elts)
    return ctx.resolve(node) in ("Exception", "BaseException")


@rule("error-contract", "error",
      "no bare `except:` and no silently swallowed broad excepts")
def _check_error_contract(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield ctx.finding(
                "error-contract", "error",
                "bare `except:` also catches KeyboardInterrupt and "
                "SystemExit: a hung worker becomes unkillable",
                node,
                hint="catch the specific errors the block can raise "
                     "(or `except Exception` with real handling)")
        elif _names_broad(ctx, node.type) and _is_trivial_body(node.body):
            yield ctx.finding(
                "error-contract", "error",
                "`except Exception: pass` swallows every failure "
                "silently: broken invariants surface as wrong numbers "
                "far from the cause",
                node,
                hint="handle the error (log, count, re-raise wrapped) "
                     "or narrow the exception type")


# ---------------------------------------------------------------------------
# suppression-hygiene
# ---------------------------------------------------------------------------

@rule("suppression-hygiene", "error",
      "suppressions must name known rules and carry a reason")
def _check_suppression_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    for suppression in ctx.suppressions:
        unknown = [name for name in suppression.rules if name not in RULES]
        if unknown:
            yield ctx.finding(
                "suppression-hygiene", "error",
                f"suppression names unknown rule(s) "
                f"{', '.join(sorted(unknown))}",
                line=suppression.line,
                hint="run `python -m tools.reprolint --list-rules` for "
                     "the catalogue")
        if not suppression.reason:
            yield ctx.finding(
                "suppression-hygiene", "error",
                "suppression without a reason (the suppression is "
                "ignored until one is given)",
                line=suppression.line,
                hint="append ` -- <why this exemption is sound>` to the "
                     "comment")
